package tsdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
)

// This file is the alerting-rules engine: deterministic threshold and
// multi-window rules over the DB's series, evaluated on the virtual
// clock with Prometheus-style pending ("for") and keep-firing
// hold-down semantics. Scrape-driven rules run after every scrape (and
// after recording rules, so rule outputs of the same tick are
// visible); event-driven rules are fed one observation at a time
// through Alert.Observe — the SLO burn monitor drives its per-task
// burn values through that path so its alert boundaries land on event
// times, not scrape ticks.
//
// Every state transition is recorded three ways: an "alert:state"
// series in the DB (0 inactive, 1 pending, 2 firing — queryable like
// any other series), alert_{pending,firing,resolved}_total counters in
// the scraped registry, and a callback (AlertRule.OnEvent) delivered
// outside the DB lock so listeners may emit spans or re-enter the DB.
// Resolved firings accumulate as AlertIncidents — the deterministic
// alert history behind /api/alerts and the end-of-run artifact.
//
// Steady-state evaluation adds no allocations: the watched series
// handle is resolved once and cached, window functions walk the ring
// in place, and transitions (the only allocating moments) are by
// definition not steady state.

// AlertState is the rule state machine's position.
type AlertState uint8

const (
	// AlertInactive: the condition does not hold (or has no data).
	AlertInactive AlertState = iota
	// AlertPending: the condition holds but has not yet held For long.
	AlertPending
	// AlertFiring: the alert is active.
	AlertFiring
)

func (s AlertState) String() string {
	switch s {
	case AlertPending:
		return "pending"
	case AlertFiring:
		return "firing"
	default:
		return "inactive"
	}
}

// AlertRule declares one alert.
type AlertRule struct {
	// Name identifies the rule, e.g. "slo-burn". Required.
	Name string
	// Labels are the rule's identity labels (joined with Name on the
	// alert:state series, the alert_* counters, and every event).
	Labels []obs.Label
	// Series names the scalar series the rule watches. Empty declares
	// an event-driven rule: the engine never evaluates it at scrape
	// time and values arrive through Alert.Observe instead.
	Series string
	// SeriesLabels are the watched series' labels (default: Labels).
	SeriesLabels []obs.Label
	// Fn is the windowed function evaluated over the watched series:
	// "latest" (default), "avg", "rate", "max", or "flips" — the count
	// of direction changes of the sample sequence inside the window,
	// the oscillation detector behind scale-flap rules.
	Fn string
	// Windows are the evaluation windows. With more than one, the
	// condition must hold over EVERY window — the classic multi-window
	// burn-rate guard (a short window for reactivity, a long one so a
	// blip can't page). Empty means a single whole-history "latest".
	Windows []time.Duration
	// Threshold is the firing bound: the condition holds when the
	// windowed value is >= Threshold (<= when Below is set).
	Threshold float64
	// Below inverts the comparison (fire on low values — stall rules).
	Below bool
	// For is the pending hold-down: the condition must hold this long
	// before the alert fires. Zero fires on the first breach.
	For time.Duration
	// KeepFiring keeps a firing alert active this long after the
	// condition clears; a re-breach resets the countdown. Zero resolves
	// on the first clear evaluation.
	KeepFiring time.Duration
	// OnEvent, when set, receives every state transition. It runs
	// outside the DB lock (same goroutine as the write that caused it),
	// so it may add spans or query the DB, but must stay deterministic.
	OnEvent func(AlertEvent)
}

// AlertEvent is one state transition.
type AlertEvent struct {
	Rule   string
	Labels []obs.Label
	// State is the state entered. AlertInactive with a non-nil Incident
	// is a resolution; with a nil Incident it is a cancelled pending.
	State AlertState
	At    time.Duration
	Value float64
	// Incident carries the completed firing on resolution.
	Incident *AlertIncident
}

// AlertIncident is one completed pending→firing→resolved cycle.
type AlertIncident struct {
	// Start is when the condition first held (the pending start).
	Start time.Duration `json:"start_ns"`
	// FiredAt is when the alert left pending for firing (== Start when
	// For is zero).
	FiredAt time.Duration `json:"fired_ns"`
	// End is when the alert resolved.
	End time.Duration `json:"end_ns"`
	// Peak is the most-breaching value observed while active (largest,
	// or smallest for Below rules).
	Peak float64 `json:"peak"`
	// Evals counts the breaching evaluations while active.
	Evals int `json:"evals"`
}

// alertHistoryCap bounds each rule's retained incident history; older
// incidents are dropped (and counted) past it.
const alertHistoryCap = 1024

// alert fn codes, parsed once at registration.
const (
	alertFnLatest = iota
	alertFnAvg
	alertFnRate
	alertFnMax
	alertFnFlips
)

// Alert is one registered rule's live state. All mutation happens
// under the owning DB's lock, in sim context.
type Alert struct {
	db   *DB
	rule AlertRule
	lkey string // rendered rule labels, the deterministic sort key
	fn   int
	wkey string  // watched-series key (scrape-driven only)
	s    *Series // resolved watched series, cached

	state    AlertState
	activeAt time.Duration // pending start of the current cycle
	firedAt  time.Duration
	clearAt  time.Duration // first clear eval while firing (-1: none)
	peak     float64
	evals    int
	lastV    float64
	lastEval time.Duration
	evalOK   bool // last evaluation had data

	stateSeries                  *Series
	cPending, cFiring, cResolved *obs.Counter

	incidents []AlertIncident
	dropped   int
}

// pendingAlertEvent parks a transition until the DB lock is released.
type pendingAlertEvent struct {
	fn func(AlertEvent)
	ev AlertEvent
}

// AddAlert registers a rule and returns its handle. Scrape-driven
// rules (non-empty Series) evaluate after every scrape in registration
// order; event-driven rules (empty Series) evaluate only via Observe.
// Must be called from sim context before or between scrapes; safe on a
// nil DB (returns nil — every Alert method is nil-safe).
func (db *DB) AddAlert(rule AlertRule) *Alert {
	if db == nil || rule.Name == "" {
		return nil
	}
	fn := alertFnLatest
	switch rule.Fn {
	case "", "latest":
	case "avg":
		fn = alertFnAvg
	case "rate":
		fn = alertFnRate
	case "max":
		fn = alertFnMax
	case "flips":
		fn = alertFnFlips
	default:
		return nil
	}
	a := &Alert{db: db, rule: rule, fn: fn, clearAt: -1}
	ls := sortLabels(rule.Labels)
	a.rule.Labels = ls
	a.lkey = labelKey(ls)
	idLabels := append([]obs.Label{obs.L("alert", rule.Name)}, ls...)
	a.stateSeries = db.EventSeries("alert:state", 0, idLabels...)
	a.cPending = db.reg.Counter("alert_pending_total", idLabels...)
	a.cFiring = db.reg.Counter("alert_firing_total", idLabels...)
	a.cResolved = db.reg.Counter("alert_resolved_total", idLabels...)
	if rule.Series != "" {
		sl := rule.SeriesLabels
		if sl == nil {
			sl = rule.Labels
		}
		a.wkey = seriesKey(rule.Series, sortLabels(sl))
	}
	db.mu.Lock()
	db.alerts = append(db.alerts, a)
	db.mu.Unlock()
	return a
}

// breach reports whether v satisfies the rule's firing condition.
func (a *Alert) breach(v float64) bool {
	if a.rule.Below {
		return v <= a.rule.Threshold
	}
	return v >= a.rule.Threshold
}

// worse reports whether v breaches harder than the current peak.
func (a *Alert) worse(v, peak float64) bool {
	if a.rule.Below {
		return v < peak
	}
	return v > peak
}

// evalLocked computes the rule's binding value at now: the windowed
// function over every window, reduced to the value that decides the
// breach (the minimum across windows for >= rules — all windows must
// clear the threshold — and the maximum for Below rules). ok is false
// when the watched series is missing or any window lacks data.
func (a *Alert) evalLocked(now time.Duration) (float64, bool) {
	s := a.s
	if s == nil {
		s = a.db.series[a.wkey]
		if s == nil {
			return 0, false
		}
		a.s = s
	}
	if len(a.rule.Windows) == 0 {
		return s.latestLocked()
	}
	var out float64
	for i, w := range a.rule.Windows {
		cutoff := now - w
		var v float64
		var ok bool
		switch a.fn {
		case alertFnAvg:
			v, ok = s.avgLocked(cutoff)
		case alertFnRate:
			v, ok = s.rateLocked(cutoff)
		case alertFnMax:
			v, ok = s.maxLocked(cutoff)
		case alertFnFlips:
			v, ok = s.flipsLocked(cutoff)
		default:
			v, ok = s.latestLocked()
		}
		if !ok {
			return 0, false
		}
		if i == 0 || (a.rule.Below && v > out) || (!a.rule.Below && v < out) {
			out = v
		}
	}
	return out, true
}

// stepLocked advances the state machine with one evaluation.
// Transitions are parked on the DB's pending-event buffer; the caller
// must drain it via deliverAlertEvents after unlocking.
func (a *Alert) stepLocked(now time.Duration, v float64, breach bool) {
	a.lastV, a.lastEval, a.evalOK = v, now, true
	switch {
	case breach && a.state == AlertInactive:
		a.activeAt = now
		a.evals = 1
		a.peak = v
		a.clearAt = -1
		if a.rule.For > 0 {
			a.state = AlertPending
			a.cPending.Inc()
			a.stateSeries.pushFrom(now, 1)
			a.park(AlertPending, now, v, nil)
			return
		}
		a.fireLocked(now, v)
	case breach && a.state == AlertPending:
		a.evals++
		if a.worse(v, a.peak) {
			a.peak = v
		}
		if now-a.activeAt >= a.rule.For {
			a.fireLocked(now, v)
		}
	case breach && a.state == AlertFiring:
		a.evals++
		if a.worse(v, a.peak) {
			a.peak = v
		}
		a.clearAt = -1 // a re-breach resets the keep-firing countdown
	case !breach && a.state == AlertPending:
		a.state = AlertInactive
		a.stateSeries.pushFrom(now, 0)
		a.park(AlertInactive, now, v, nil)
	case !breach && a.state == AlertFiring:
		if a.rule.KeepFiring > 0 {
			if a.clearAt < 0 {
				a.clearAt = now
			}
			if now-a.clearAt < a.rule.KeepFiring {
				return
			}
		}
		a.resolveLocked(now, v)
	}
}

func (a *Alert) fireLocked(now time.Duration, v float64) {
	a.state = AlertFiring
	a.firedAt = now
	a.clearAt = -1
	a.cFiring.Inc()
	a.stateSeries.pushFrom(now, 2)
	a.park(AlertFiring, now, v, nil)
}

func (a *Alert) resolveLocked(now time.Duration, v float64) {
	inc := AlertIncident{
		Start: a.activeAt, FiredAt: a.firedAt, End: now,
		Peak: a.peak, Evals: a.evals,
	}
	if len(a.incidents) >= alertHistoryCap {
		copy(a.incidents, a.incidents[1:])
		a.incidents = a.incidents[:len(a.incidents)-1]
		a.dropped++
	}
	a.incidents = append(a.incidents, inc)
	a.state = AlertInactive
	a.cResolved.Inc()
	a.stateSeries.pushFrom(now, 0)
	a.park(AlertInactive, now, v, &inc)
}

// park queues one transition for post-unlock delivery.
func (a *Alert) park(st AlertState, at time.Duration, v float64, inc *AlertIncident) {
	if a.rule.OnEvent == nil {
		return
	}
	a.db.pendingEv = append(a.db.pendingEv, pendingAlertEvent{
		fn: a.rule.OnEvent,
		ev: AlertEvent{Rule: a.rule.Name, Labels: a.rule.Labels, State: st, At: at, Value: v, Incident: inc},
	})
}

// deliverAlertEvents drains the parked transitions outside the DB
// lock. Callbacks may Observe other alerts (appending more events);
// the index loop picks those up, and the delivering flag keeps nested
// drains from double-firing.
func (db *DB) deliverAlertEvents() {
	if db == nil || len(db.pendingEv) == 0 || db.delivering {
		return
	}
	db.delivering = true
	for i := 0; i < len(db.pendingEv); i++ {
		pe := db.pendingEv[i]
		pe.fn(pe.ev)
	}
	db.pendingEv = db.pendingEv[:0]
	db.delivering = false
}

// evalAlertsLocked runs every scrape-driven rule once, in registration
// order. Rules with no data step with a false condition, so a vanished
// series resolves its alert rather than wedging it.
func (db *DB) evalAlertsLocked(now time.Duration) {
	for _, a := range db.alerts {
		if a.rule.Series == "" {
			continue
		}
		v, ok := a.evalLocked(now)
		if !ok {
			a.evalOK = false
			a.stepLocked(now, 0, false)
			a.evalOK = false
			continue
		}
		a.stepLocked(now, v, a.breach(v))
	}
}

// Observe feeds one event-time observation through the rule's state
// machine — the event-driven twin of the scrape evaluation, used by
// the SLO monitor so alert boundaries land exactly on task end times.
// Must be called from sim context. Safe on a nil alert.
func (a *Alert) Observe(t time.Duration, v float64) {
	if a == nil {
		return
	}
	db := a.db
	db.mu.Lock()
	if t > db.last {
		db.last = t
	}
	a.stepLocked(t, v, a.breach(v))
	db.mu.Unlock()
	db.deliverAlertEvents()
}

// Resolve force-resolves a firing alert at t (run-end flushes). A
// pending alert is cancelled. Safe on a nil alert.
func (a *Alert) Resolve(t time.Duration) {
	if a == nil {
		return
	}
	db := a.db
	db.mu.Lock()
	switch a.state {
	case AlertFiring:
		a.resolveLocked(t, a.lastV)
	case AlertPending:
		a.state = AlertInactive
		a.stateSeries.pushFrom(t, 0)
		a.park(AlertInactive, t, a.lastV, nil)
	}
	db.mu.Unlock()
	db.deliverAlertEvents()
}

// State returns the rule's current state.
func (a *Alert) State() AlertState {
	if a == nil {
		return AlertInactive
	}
	a.db.mu.RLock()
	defer a.db.mu.RUnlock()
	return a.state
}

// Incidents copies out the rule's resolved history, oldest first.
func (a *Alert) Incidents() []AlertIncident {
	if a == nil {
		return nil
	}
	a.db.mu.RLock()
	defer a.db.mu.RUnlock()
	return append([]AlertIncident(nil), a.incidents...)
}

// AlertStatus is one rule's queryable state: the /api/alerts shape.
type AlertStatus struct {
	Name      string          `json:"name"`
	Labels    []obs.Label     `json:"labels,omitempty"`
	State     string          `json:"state"`
	Since     time.Duration   `json:"since_ns,omitempty"` // pending start of the active cycle
	Value     float64         `json:"value"`
	LastEval  time.Duration   `json:"last_eval_ns"`
	Threshold float64         `json:"threshold"`
	Below     bool            `json:"below,omitempty"`
	Series    string          `json:"series,omitempty"`
	Fn        string          `json:"fn,omitempty"`
	Windows   []time.Duration `json:"windows_ns,omitempty"`
	Evals     int             `json:"evals,omitempty"` // breaching evals of the active cycle
	Peak      float64         `json:"peak,omitempty"`  // worst value of the active cycle
	Incidents []AlertIncident `json:"incidents,omitempty"`
	Dropped   int             `json:"incidents_dropped,omitempty"`
}

// AlertStatuses snapshots every registered rule in deterministic
// name-then-label order.
func (db *DB) AlertStatuses() []AlertStatus {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]AlertStatus, 0, len(db.alerts))
	for _, a := range db.alerts {
		st := AlertStatus{
			Name: a.rule.Name, Labels: a.rule.Labels, State: a.state.String(),
			Value: a.lastV, LastEval: a.lastEval,
			Threshold: a.rule.Threshold, Below: a.rule.Below,
			Series: a.rule.Series, Fn: a.rule.Fn, Windows: a.rule.Windows,
			Incidents: append([]AlertIncident(nil), a.incidents...),
			Dropped:   a.dropped,
		}
		if a.state != AlertInactive {
			st.Since = a.activeAt
			st.Evals = a.evals
			st.Peak = a.peak
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

// AlertCounts returns how many rules are currently pending and firing.
func (db *DB) AlertCounts() (pending, firing int) {
	if db == nil {
		return 0, 0
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, a := range db.alerts {
		switch a.state {
		case AlertPending:
			pending++
		case AlertFiring:
			firing++
		}
	}
	return pending, firing
}

// WriteAlertHistory renders the DB's alert state as the deterministic
// end-of-run artifact: a summary line, then one line per resolved
// incident (rule order, then chronological), then one line per rule
// still pending or firing. Every value is virtual, so the output is
// byte-identical for a given scenario at any parallelism. prefix is
// prepended to every line (the report layer passes "cell=NAME ").
func WriteAlertHistory(w io.Writer, prefix string, db *DB) error {
	bw := bufio.NewWriter(w)
	sts := db.AlertStatuses()
	incidents, pending, firing := 0, 0, 0
	for _, st := range sts {
		incidents += len(st.Incidents) + st.Dropped
		switch st.State {
		case "pending":
			pending++
		case "firing":
			firing++
		}
	}
	fmt.Fprintf(bw, "%salerts: rules=%d incidents=%d firing=%d pending=%d\n",
		prefix, len(sts), incidents, firing, pending)
	for _, st := range sts {
		id := st.Name
		if lk := labelKey(st.Labels); lk != "" {
			id += "{" + lk + "}"
		}
		if st.Dropped > 0 {
			fmt.Fprintf(bw, "%salert %s dropped=%d (history capped at %d)\n", prefix, id, st.Dropped, alertHistoryCap)
		}
		for _, inc := range st.Incidents {
			fmt.Fprintf(bw, "%salert %s state=resolved start=%s fired=%s end=%s peak=%g evals=%d\n",
				prefix, id, inc.Start, inc.FiredAt, inc.End, inc.Peak, inc.Evals)
		}
		if st.State != "inactive" {
			fmt.Fprintf(bw, "%salert %s state=%s since=%s value=%g evals=%d\n",
				prefix, id, st.State, st.Since, st.Value, st.Evals)
		}
	}
	return bw.Flush()
}

// pushFrom appends a sample from engine code that already holds the DB
// lock (Series.Append would deadlock). Safe on a nil series.
func (s *Series) pushFrom(t time.Duration, v float64) {
	if s == nil {
		return
	}
	s.push(t, v)
	if t > s.db.last {
		s.db.last = t
	}
}

// Locked windowed helpers for the alert engine: identical semantics to
// the Querier functions, evaluated in place on a bound series with no
// allocation. cutoff is now-window; callers hold the DB lock.

func (s *Series) latestLocked() (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	return s.at(s.n - 1).V, true
}

func (s *Series) avgLocked(cutoff time.Duration) (float64, bool) {
	lo := s.searchLocked(cutoff)
	if lo >= s.n {
		return 0, false
	}
	sum := 0.0
	for i := lo; i < s.n; i++ {
		sum += s.at(i).V
	}
	return sum / float64(s.n-lo), true
}

func (s *Series) rateLocked(cutoff time.Duration) (float64, bool) {
	lo := s.searchLocked(cutoff)
	if s.n-lo < 2 {
		return 0, false
	}
	first, last := s.at(lo), s.at(s.n-1)
	dt := (last.T - first.T).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return (last.V - first.V) / dt, true
}

func (s *Series) maxLocked(cutoff time.Duration) (float64, bool) {
	lo := s.searchLocked(cutoff)
	if lo >= s.n {
		return 0, false
	}
	max := s.at(lo).V
	for i := lo + 1; i < s.n; i++ {
		if x := s.at(i).V; x > max {
			max = x
		}
	}
	return max, true
}

// flipsLocked counts direction changes of the sample sequence inside
// the window (zero deltas don't reset the direction) — the oscillation
// measure behind scale-flap detection.
func (s *Series) flipsLocked(cutoff time.Duration) (float64, bool) {
	lo := s.searchLocked(cutoff)
	if s.n-lo < 2 {
		return 0, false
	}
	flips, dir := 0, 0
	for i := lo + 1; i < s.n; i++ {
		d := s.at(i).V - s.at(i-1).V
		switch {
		case d > 0:
			if dir < 0 {
				flips++
			}
			dir = 1
		case d < 0:
			if dir > 0 {
				flips++
			}
			dir = -1
		}
	}
	return float64(flips), true
}
