package tsdb

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// alertHarness is a registry+DB pair with a gauge the tests drive.
type alertHarness struct {
	clk *fakeClock
	reg *obs.Registry
	db  *DB
	g   *obs.Gauge
}

func newAlertHarness(t *testing.T) *alertHarness {
	t.Helper()
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Interval: time.Second, Capacity: 64})
	return &alertHarness{clk: clk, reg: reg, db: db, g: reg.Gauge("depth")}
}

// step sets the gauge, advances one second, and scrapes.
func (h *alertHarness) step(v float64) {
	h.clk.t += time.Second
	h.g.Set(v)
	h.db.Scrape()
}

func TestAlertLifecycleWithFor(t *testing.T) {
	h := newAlertHarness(t)
	var events []AlertEvent
	a := h.db.AddAlert(AlertRule{
		Name:      "depth-high",
		Series:    "depth",
		Threshold: 10,
		For:       2 * time.Second,
		OnEvent:   func(ev AlertEvent) { events = append(events, ev) },
	})
	if a == nil {
		t.Fatal("AddAlert returned nil")
	}

	h.step(5) // t=1s: below threshold
	if got := a.State(); got != AlertInactive {
		t.Fatalf("state after clear sample = %v, want inactive", got)
	}
	h.step(12) // t=2s: breach → pending
	if got := a.State(); got != AlertPending {
		t.Fatalf("state after first breach = %v, want pending", got)
	}
	h.step(15) // t=3s: held 1s < For
	if got := a.State(); got != AlertPending {
		t.Fatalf("state mid hold-down = %v, want pending", got)
	}
	h.step(20) // t=4s: held 2s >= For → firing
	if got := a.State(); got != AlertFiring {
		t.Fatalf("state after hold-down = %v, want firing", got)
	}
	h.step(11) // t=5s: still breaching
	h.step(3)  // t=6s: clear → resolved
	if got := a.State(); got != AlertInactive {
		t.Fatalf("state after clear = %v, want inactive", got)
	}

	incs := a.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	inc := incs[0]
	if inc.Start != 2*time.Second || inc.FiredAt != 4*time.Second || inc.End != 6*time.Second {
		t.Fatalf("incident times = %+v", inc)
	}
	if inc.Peak != 20 || inc.Evals != 4 {
		t.Fatalf("incident peak/evals = %v/%d, want 20/4", inc.Peak, inc.Evals)
	}

	// Transition events: pending, firing, resolved (with incident).
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].State != AlertPending || events[1].State != AlertFiring || events[2].State != AlertInactive {
		t.Fatalf("event states = %v %v %v", events[0].State, events[1].State, events[2].State)
	}
	if events[2].Incident == nil || events[2].Incident.Peak != 20 {
		t.Fatalf("resolution incident = %+v", events[2].Incident)
	}

	// State series recorded 1 (pending), 2 (firing), 0 (resolved).
	samples := h.db.Samples("alert:state", 0, time.Hour, obs.L("alert", "depth-high"))
	want := []Sample{{2 * time.Second, 1}, {4 * time.Second, 2}, {6 * time.Second, 0}}
	if len(samples) != len(want) {
		t.Fatalf("alert:state samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("alert:state[%d] = %v, want %v", i, samples[i], want[i])
		}
	}

	// Counters moved once each (increments made during tick N's alert
	// pass are sampled by tick N+1's scrape).
	h.step(3)
	for _, name := range []string{"alert_pending_total", "alert_firing_total", "alert_resolved_total"} {
		if s, ok := h.db.Latest(name, obs.L("alert", "depth-high")); !ok || s.V != 1 {
			t.Fatalf("%s = %+v ok=%v, want 1", name, s, ok)
		}
	}
}

func TestAlertFiresImmediatelyWithoutFor(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{Name: "hot", Series: "depth", Threshold: 1})
	h.step(2)
	if got := a.State(); got != AlertFiring {
		t.Fatalf("state = %v, want firing on first breach", got)
	}
	h.step(0)
	incs := a.Incidents()
	if len(incs) != 1 || incs[0].Start != incs[0].FiredAt {
		t.Fatalf("incidents = %+v, want Start==FiredAt", incs)
	}
	if incs[0].Evals != 1 {
		t.Fatalf("evals = %d, want 1", incs[0].Evals)
	}
}

func TestAlertPendingCancelledLeavesNoIncident(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{Name: "hot", Series: "depth", Threshold: 10, For: 5 * time.Second})
	h.step(12)
	if a.State() != AlertPending {
		t.Fatal("want pending")
	}
	h.step(1) // clears before For elapses
	if a.State() != AlertInactive {
		t.Fatal("want inactive after cancelled pending")
	}
	if n := len(a.Incidents()); n != 0 {
		t.Fatalf("incidents = %d, want 0 (cancelled pending is not an incident)", n)
	}
	if s, ok := h.db.Latest("alert_firing_total", obs.L("alert", "hot")); !ok || s.V != 0 {
		t.Fatalf("alert_firing_total = %+v, want 0", s)
	}
}

func TestAlertKeepFiring(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{
		Name: "hot", Series: "depth", Threshold: 10,
		KeepFiring: 3 * time.Second,
	})
	h.step(12) // t=1: firing
	h.step(1)  // t=2: clear, keep-firing countdown starts
	h.step(1)  // t=3: 1s into countdown
	if a.State() != AlertFiring {
		t.Fatal("keep-firing should hold the alert active")
	}
	h.step(11) // t=4: re-breach resets the countdown
	h.step(1)  // t=5: countdown restarts
	h.step(1)  // t=6
	h.step(1)  // t=7
	h.step(1)  // t=8: now-clearAt = 3s >= KeepFiring → resolved
	if a.State() != AlertInactive {
		t.Fatalf("state = %v, want resolved after keep-firing expiry", a.State())
	}
	incs := a.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1 (keep-firing bridges the gap)", len(incs))
	}
	if incs[0].End != 8*time.Second {
		t.Fatalf("incident end = %v, want 8s", incs[0].End)
	}
}

func TestAlertMultiWindowRequiresAllWindows(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{
		Name: "burn", Series: "depth", Fn: "avg",
		Windows:   []time.Duration{2 * time.Second, 6 * time.Second},
		Threshold: 10,
	})
	// Long stretch of low values, then a short spike: the 2s window
	// breaches but the 6s average stays below threshold.
	for i := 0; i < 6; i++ {
		h.step(1)
	}
	h.step(30) // t=7: avg(2s)=15.5 ≥ 10, avg(6s)≈5.8 < 10
	if a.State() != AlertInactive {
		t.Fatal("short-window spike alone must not fire a multi-window rule")
	}
	// Sustained breach pushes both windows over.
	for i := 0; i < 6; i++ {
		h.step(30)
	}
	if a.State() != AlertFiring {
		t.Fatal("sustained breach should fire once all windows breach")
	}
}

func TestAlertBelowRule(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{
		Name: "stall", Series: "depth", Threshold: 2, Below: true,
	})
	h.step(10)
	if a.State() != AlertInactive {
		t.Fatal("value above a Below threshold must stay inactive")
	}
	h.step(1)
	if a.State() != AlertFiring {
		t.Fatal("value at/below a Below threshold should fire")
	}
	h.step(0.5) // worse (lower) → new peak
	h.step(10)
	incs := a.Incidents()
	if len(incs) != 1 || incs[0].Peak != 0.5 {
		t.Fatalf("incidents = %+v, want one with peak 0.5 (most-breaching low)", incs)
	}
}

func TestAlertFlipsFn(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{
		Name: "flap", Series: "depth", Fn: "flips",
		Windows:   []time.Duration{20 * time.Second},
		Threshold: 3,
	})
	// Monotonic ramp: no direction changes.
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.step(v)
	}
	if a.State() != AlertInactive {
		t.Fatal("monotonic sequence has no flips")
	}
	// Oscillation: 5→2→6→1→7 is 3 more direction changes... each
	// down-up pair adds two flips.
	for _, v := range []float64{2, 6, 1, 7} {
		h.step(v)
	}
	if a.State() != AlertFiring {
		t.Fatal("oscillating sequence should trip the flips rule")
	}
}

func TestAlertNoDataNeverFiresAndVanishedDataResolves(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{
		Name: "ghost", Series: "missing", Threshold: 0,
	})
	h.step(1)
	if a.State() != AlertInactive {
		t.Fatal("rule over a missing series must stay inactive")
	}

	// A windowed rule whose series goes quiet: samples age out of the
	// window → evaluation loses data → the alert resolves rather than
	// latching forever.
	ev := h.db.EventSeries("pulse", 8)
	b := h.db.AddAlert(AlertRule{
		Name: "pulse-high", Series: "pulse", Fn: "avg",
		Windows: []time.Duration{2 * time.Second}, Threshold: 5,
	})
	ev.Append(h.clk.t, 10)
	h.step(1)
	if b.State() != AlertFiring {
		t.Fatal("want firing while the window holds the sample")
	}
	h.step(1)
	h.step(1)
	h.step(1) // window has slid past the lone sample
	if b.State() != AlertInactive {
		t.Fatalf("state = %v, want resolved once the window empties", b.State())
	}
	if n := len(b.Incidents()); n != 1 {
		t.Fatalf("incidents = %d, want 1", n)
	}
}

func TestAlertManualObserveAndResolve(t *testing.T) {
	h := newAlertHarness(t)
	var events []AlertEvent
	a := h.db.AddAlert(AlertRule{
		Name: "burn", Labels: []obs.Label{obs.L("app", "x")},
		Threshold: 1,
		OnEvent:   func(ev AlertEvent) { events = append(events, ev) },
	})
	// Event-driven rules are ignored by scrapes.
	h.step(99)
	if a.State() != AlertInactive {
		t.Fatal("scrape must not evaluate an event-driven rule")
	}
	a.Observe(1500*time.Millisecond, 2.5)
	if a.State() != AlertFiring {
		t.Fatal("Observe breach should fire")
	}
	a.Observe(1600*time.Millisecond, 3.5) // peak
	a.Observe(1700*time.Millisecond, 1.2)
	// Force-resolve mid-flight (run-end flush).
	a.Resolve(2 * time.Second)
	incs := a.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	if incs[0].Start != 1500*time.Millisecond || incs[0].End != 2*time.Second {
		t.Fatalf("incident = %+v", incs[0])
	}
	if incs[0].Peak != 3.5 || incs[0].Evals != 3 {
		t.Fatalf("peak/evals = %v/%d, want 3.5/3", incs[0].Peak, incs[0].Evals)
	}
	// Observe advances LastTime so wall-clock-side queries see it.
	if got := h.db.LastTime(); got != 2*time.Second {
		t.Fatalf("LastTime = %v, want 2s", got)
	}
	if len(events) != 2 || events[1].Incident == nil {
		t.Fatalf("events = %+v", events)
	}
}

// The OnEvent callback runs outside the DB lock: it can query the DB
// and Observe other alerts without deadlocking, and chained events
// still deliver exactly once.
func TestAlertEventDeliveredOutsideLock(t *testing.T) {
	h := newAlertHarness(t)
	var chained *Alert
	var order []string
	h.db.AddAlert(AlertRule{
		Name: "first", Series: "depth", Threshold: 10,
		OnEvent: func(ev AlertEvent) {
			order = append(order, "first:"+ev.State.String())
			if _, ok := h.db.Latest("depth"); !ok {
				t.Error("OnEvent could not query the DB")
			}
			chained.Observe(ev.At, ev.Value) // re-enters the engine
		},
	})
	chained = h.db.AddAlert(AlertRule{
		Name: "second", Threshold: 10,
		OnEvent: func(ev AlertEvent) { order = append(order, "second:"+ev.State.String()) },
	})
	h.step(20)
	want := []string{"first:firing", "second:firing"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("delivery order = %v, want %v", order, want)
	}
}

func TestAlertStatusesDeterministicOrder(t *testing.T) {
	h := newAlertHarness(t)
	h.db.AddAlert(AlertRule{Name: "b", Series: "depth", Threshold: 100})
	h.db.AddAlert(AlertRule{Name: "a", Labels: []obs.Label{obs.L("app", "y")}, Threshold: 1})
	h.db.AddAlert(AlertRule{Name: "a", Labels: []obs.Label{obs.L("app", "x")}, Threshold: 1})
	h.step(5)
	sts := h.db.AlertStatuses()
	if len(sts) != 3 {
		t.Fatalf("statuses = %d, want 3", len(sts))
	}
	got := make([]string, len(sts))
	for i, st := range sts {
		got[i] = st.Name + "{" + labelKey(st.Labels) + "}"
	}
	want := []string{"a{app=x}", "a{app=y}", "b{}"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("status order = %v, want %v", got, want)
		}
	}
}

func TestAlertCountsAndWriteHistory(t *testing.T) {
	h := newAlertHarness(t)
	h.db.AddAlert(AlertRule{Name: "hot", Series: "depth", Threshold: 10})
	h.db.AddAlert(AlertRule{Name: "warm", Series: "depth", Threshold: 5, For: time.Hour})
	h.step(20) // hot fires; warm pending
	p, f := h.db.AlertCounts()
	if p != 1 || f != 1 {
		t.Fatalf("counts = pending %d firing %d, want 1/1", p, f)
	}
	h.step(1) // hot resolves; warm pending cancelled
	h.step(20)

	var buf bytes.Buffer
	if err := WriteAlertHistory(&buf, "cell=x ", h.db); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cell=x alerts: rules=2 incidents=1 firing=1 pending=1\n",
		"cell=x alert hot state=resolved start=1s fired=1s end=2s peak=20 evals=1\n",
		"cell=x alert hot state=firing since=3s value=20 evals=1\n",
		"cell=x alert warm state=pending since=3s value=20 evals=1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("history missing %q; got:\n%s", want, out)
		}
	}
}

func TestAlertHistoryCapBounds(t *testing.T) {
	h := newAlertHarness(t)
	a := h.db.AddAlert(AlertRule{Name: "churn", Threshold: 1})
	for i := 0; i < alertHistoryCap+5; i++ {
		base := time.Duration(i) * 2 * time.Second
		a.Observe(base, 2)
		a.Observe(base+time.Second, 0)
	}
	incs := a.Incidents()
	if len(incs) != alertHistoryCap {
		t.Fatalf("incidents = %d, want capped at %d", len(incs), alertHistoryCap)
	}
	// Oldest were dropped: the first retained incident is the 6th.
	if incs[0].Start != 5*2*time.Second {
		t.Fatalf("oldest retained start = %v, want 10s", incs[0].Start)
	}
	sts := h.db.AlertStatuses()
	if sts[0].Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", sts[0].Dropped)
	}
	var buf bytes.Buffer
	if err := WriteAlertHistory(&buf, "", h.db); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped=5") {
		t.Fatal("history should surface the drop count")
	}
}

func TestAddAlertRejectsBadRules(t *testing.T) {
	h := newAlertHarness(t)
	if a := h.db.AddAlert(AlertRule{Series: "depth"}); a != nil {
		t.Fatal("nameless rule should be rejected")
	}
	if a := h.db.AddAlert(AlertRule{Name: "x", Series: "depth", Fn: "median"}); a != nil {
		t.Fatal("unknown fn should be rejected")
	}
	var nilDB *DB
	if a := nilDB.AddAlert(AlertRule{Name: "x"}); a != nil {
		t.Fatal("nil DB should return nil")
	}
	// All alert methods are nil-safe.
	var nilA *Alert
	nilA.Observe(0, 0)
	nilA.Resolve(0)
	if nilA.State() != AlertInactive || nilA.Incidents() != nil {
		t.Fatal("nil alert accessors should be inert")
	}
}
