package tsdb

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// benchDB builds a DB over a registry shaped like an instrumented
// platform run: a few dozen counter/gauge series plus latency
// histograms, pre-scraped once so the flattened target list is cached.
func benchDB(b *testing.B) (*DB, *fakeClock, *obs.Registry) {
	b.Helper()
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	for i := 0; i < 16; i++ {
		reg.Counter("tasks_total", obs.L("app", string(rune('a'+i)))).Add(float64(i))
		reg.Gauge("depth", obs.L("app", string(rune('a'+i)))).Set(float64(i))
	}
	for i := 0; i < 8; i++ {
		h := reg.Histogram("lat", obs.DefLatencyBuckets, obs.L("app", string(rune('a'+i))))
		for j := 0; j < 64; j++ {
			h.Observe(float64(j) * 0.001)
		}
	}
	db := New(reg, clk, Config{Capacity: 512})
	clk.t = time.Second
	db.Scrape()
	return db, clk, reg
}

// BenchmarkScrape is the steady-state path: the registry generation is
// unchanged, so a scrape is pure ring writes — the acceptance gate
// holds it at 0 allocs/op.
func BenchmarkScrape(b *testing.B) {
	db, clk, _ := benchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.t += time.Second
		db.Scrape()
	}
	if testing.AllocsPerRun(10, db.Scrape) != 0 {
		b.Fatal("steady-state Scrape allocates")
	}
}

// BenchmarkScrapeWithRules adds a recording rule per scrape tick.
func BenchmarkScrapeWithRules(b *testing.B) {
	db, clk, _ := benchDB(b)
	db.AddRule("tasks:rate", nil, func(q Querier, now time.Duration) (float64, bool) {
		return q.Rate("tasks_total", 30*time.Second, obs.L("app", "a"))
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.t += time.Second
		db.Scrape()
	}
}

// BenchmarkAlertEval is the alert engine's steady-state path: a pack
// of multi-window threshold rules re-evaluated on every scrape with no
// state transitions. The acceptance gate holds the combined
// scrape-plus-eval at 0 allocs/op — rule evaluation reuses the cached
// series handles and the locked window helpers.
func BenchmarkAlertEval(b *testing.B) {
	db, clk, _ := benchDB(b)
	for i := 0; i < 8; i++ {
		app := string(rune('a' + i))
		db.AddAlert(AlertRule{
			Name: "depth-high", Labels: []obs.Label{obs.L("app", app)},
			Series: "depth", SeriesLabels: []obs.Label{obs.L("app", app)},
			Fn: "avg", Windows: []time.Duration{10 * time.Second, time.Minute},
			Threshold: 1e9, For: 30 * time.Second,
		})
	}
	// Warm the cached series bindings and fill the windows.
	for i := 0; i < 8; i++ {
		clk.t += time.Second
		db.Scrape()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.t += time.Second
		db.Scrape()
	}
	if testing.AllocsPerRun(10, db.Scrape) != 0 {
		b.Fatal("steady-state alert evaluation allocates")
	}
}

func BenchmarkEventAppend(b *testing.B) {
	db, _, _ := benchDB(b)
	s := db.EventSeries("events", 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(time.Duration(i), 1)
	}
}

func BenchmarkQueryRate(b *testing.B) {
	db, clk, _ := benchDB(b)
	for i := 0; i < 256; i++ {
		clk.t += time.Second
		db.Scrape()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Rate("tasks_total", 30*time.Second, obs.L("app", "a")); !ok {
			b.Fatal("rate miss")
		}
	}
}

func BenchmarkQueryQuantile(b *testing.B) {
	db, clk, reg := benchDB(b)
	h := reg.Histogram("lat", obs.DefLatencyBuckets, obs.L("app", "a"))
	for i := 0; i < 256; i++ {
		clk.t += time.Second
		h.Observe(float64(i%64) * 0.001) // keep the window delta non-empty
		db.Scrape()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Quantile("lat", 0.95, 30*time.Second, obs.L("app", "a")); !ok {
			b.Fatal("quantile miss")
		}
	}
}
