package tsdb

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// Querier is the read API shared by external callers (DB methods, the
// live HTTP server) and recording rules. Windowed functions evaluate
// over samples with T in [now-window, now]; ok is false when the
// series is unknown or the window holds too few samples to answer.
type Querier interface {
	// Latest returns the newest sample of a scalar series.
	Latest(name string, labels ...obs.Label) (Sample, bool)
	// Rate returns the per-second increase of a counter series over
	// the window: (last-first)/seconds between the window's first and
	// last samples. Needs at least two samples at distinct times.
	Rate(name string, window time.Duration, labels ...obs.Label) (float64, bool)
	// Avg returns the mean sample value over the window.
	Avg(name string, window time.Duration, labels ...obs.Label) (float64, bool)
	// Max returns the largest sample value over the window.
	Max(name string, window time.Duration, labels ...obs.Label) (float64, bool)
	// Quantile estimates the q-quantile of a histogram series over the
	// window by le-bucket interpolation on the delta between the newest
	// snapshot and the last snapshot before the window start.
	Quantile(name string, q float64, window time.Duration, labels ...obs.Label) (float64, bool)
}

// view reads the DB without taking its lock: it backs both the public
// query methods (which lock around it) and recording rules (which run
// inside the scrape's write lock).
type view struct{ db *DB }

func (v view) scalarFor(name string, labels []obs.Label) *Series {
	return v.db.series[seriesKey(name, sortLabels(labels))]
}

func (v view) histFor(name string, labels []obs.Label) *histSeries {
	return v.db.hists[seriesKey(name, sortLabels(labels))]
}

// window returns the index range [lo, s.n) of samples inside
// [now-window, now], using the DB's newest written time as now.
func (v view) window(s *Series, window time.Duration) int {
	return s.searchLocked(v.db.last - window)
}

func (v view) Latest(name string, labels ...obs.Label) (Sample, bool) {
	s := v.scalarFor(name, labels)
	if s == nil || s.n == 0 {
		return Sample{}, false
	}
	return s.at(s.n - 1), true
}

func (v view) Rate(name string, window time.Duration, labels ...obs.Label) (float64, bool) {
	s := v.scalarFor(name, labels)
	if s == nil {
		return 0, false
	}
	lo := v.window(s, window)
	if s.n-lo < 2 {
		return 0, false
	}
	first, last := s.at(lo), s.at(s.n-1)
	dt := (last.T - first.T).Seconds()
	if dt <= 0 {
		return 0, false
	}
	return (last.V - first.V) / dt, true
}

func (v view) Avg(name string, window time.Duration, labels ...obs.Label) (float64, bool) {
	s := v.scalarFor(name, labels)
	if s == nil {
		return 0, false
	}
	lo := v.window(s, window)
	if lo >= s.n {
		return 0, false
	}
	sum := 0.0
	for i := lo; i < s.n; i++ {
		sum += s.at(i).V
	}
	return sum / float64(s.n-lo), true
}

func (v view) Max(name string, window time.Duration, labels ...obs.Label) (float64, bool) {
	s := v.scalarFor(name, labels)
	if s == nil {
		return 0, false
	}
	lo := v.window(s, window)
	if lo >= s.n {
		return 0, false
	}
	max := s.at(lo).V
	for i := lo + 1; i < s.n; i++ {
		if x := s.at(i).V; x > max {
			max = x
		}
	}
	return max, true
}

func (v view) Quantile(name string, q float64, window time.Duration, labels ...obs.Label) (float64, bool) {
	hs := v.histFor(name, labels)
	if hs == nil || hs.n == 0 {
		return 0, false
	}
	// Delta between the newest snapshot and the last snapshot strictly
	// before the window start (zero baseline when the window reaches
	// past everything retained).
	cutoff := v.db.last - window
	base := -1
	for i := hs.n - 1; i >= 0; i-- {
		if hs.times[hs.slotAt(i)] < cutoff {
			base = i
			break
		}
	}
	newest := hs.slotAt(hs.n-1) * hs.stride
	delta := make([]uint64, hs.stride)
	if base < 0 {
		copy(delta, hs.cum[newest:newest+hs.stride])
	} else {
		old := hs.slotAt(base) * hs.stride
		for i := 0; i < hs.stride; i++ {
			delta[i] = hs.cum[newest+i] - hs.cum[old+i]
		}
	}
	total := delta[hs.stride-1]
	if total == 0 {
		return 0, false
	}
	return obs.HistogramQuantile(q, hs.bounds, delta[:len(hs.bounds)], total), true
}

// Public query methods: identical semantics to the rule-side Querier,
// but safe from any goroutine — they evaluate "now" as the newest
// virtual time written (LastTime), never the simulation clock.

func (db *DB) Latest(name string, labels ...obs.Label) (Sample, bool) {
	if db == nil {
		return Sample{}, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return view{db}.Latest(name, labels...)
}

func (db *DB) Rate(name string, window time.Duration, labels ...obs.Label) (float64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return view{db}.Rate(name, window, labels...)
}

func (db *DB) Avg(name string, window time.Duration, labels ...obs.Label) (float64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return view{db}.Avg(name, window, labels...)
}

func (db *DB) Max(name string, window time.Duration, labels ...obs.Label) (float64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return view{db}.Max(name, window, labels...)
}

func (db *DB) Quantile(name string, q float64, window time.Duration, labels ...obs.Label) (float64, bool) {
	if db == nil {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return view{db}.Quantile(name, q, window, labels...)
}

// Samples copies out a scalar series' retained samples with T in
// [from, to] (to <= 0 means "through the newest sample").
func (db *DB) Samples(name string, from, to time.Duration, labels ...obs.Label) []Sample {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := view{db}.scalarFor(name, labels)
	if s == nil {
		return nil
	}
	if to <= 0 {
		to = db.last
	}
	var out []Sample
	for i := s.searchLocked(from); i < s.n; i++ {
		smp := s.at(i)
		if smp.T > to {
			break
		}
		out = append(out, smp)
	}
	return out
}

// SeriesInfo describes one retained series for discovery endpoints.
type SeriesInfo struct {
	Name   string      `json:"name"`
	Kind   string      `json:"kind"`
	Labels []obs.Label `json:"labels,omitempty"`
	Len    int         `json:"len"`
	Oldest time.Duration `json:"oldest_ns"`
	Newest time.Duration `json:"newest_ns"`
}

// List enumerates every retained series (scalar and histogram) in
// deterministic name-then-label order.
func (db *DB) List() []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]SeriesInfo, 0, len(db.series)+len(db.hists))
	for _, s := range db.series {
		if s.n == 0 {
			continue
		}
		out = append(out, SeriesInfo{
			Name: s.name, Kind: db.kinds[s.name].String(), Labels: s.labels,
			Len: s.n, Oldest: s.at(0).T, Newest: s.at(s.n - 1).T,
		})
	}
	for _, hs := range db.hists {
		if hs.n == 0 {
			continue
		}
		out = append(out, SeriesInfo{
			Name: hs.name, Kind: obs.KindHistogram.String(), Labels: hs.labels,
			Len: hs.n, Oldest: hs.times[hs.slotAt(0)], Newest: hs.times[hs.slotAt(hs.n-1)],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

// Exposition snapshots the newest sample of every series as Prometheus
// families (extra labels appended to each series), ready for
// obs.Exposition — the live /metrics endpoint serves exactly this.
// Families come out in sorted name order, series in label order.
func (db *DB) Exposition(extra ...obs.Label) []obs.PromFamily {
	if db == nil {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()

	type entry struct {
		lkey string
		s    obs.PromSeries
	}
	byName := make(map[string][]entry)
	for _, s := range db.series {
		if s.n == 0 {
			continue
		}
		labels := append(append([]obs.Label(nil), s.labels...), extra...)
		byName[s.name] = append(byName[s.name], entry{s.lkey, obs.PromSeries{Labels: labels, Value: s.at(s.n - 1).V}})
	}
	for _, hs := range db.hists {
		if hs.n == 0 {
			continue
		}
		slot := hs.slotAt(hs.n - 1)
		base := slot * hs.stride
		cum := make([]uint64, len(hs.bounds))
		copy(cum, hs.cum[base:base+len(hs.bounds)])
		labels := append(append([]obs.Label(nil), hs.labels...), extra...)
		byName[hs.name] = append(byName[hs.name], entry{hs.lkey, obs.PromSeries{
			Labels: labels,
			Bounds: hs.bounds,
			Cum:    cum,
			Sum:    hs.sums[slot],
			Count:  hs.cum[base+hs.stride-1],
		}})
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]obs.PromFamily, 0, len(names))
	for _, n := range names {
		entries := byName[n]
		sort.Slice(entries, func(i, j int) bool { return entries[i].lkey < entries[j].lkey })
		f := obs.PromFamily{Name: n, Kind: db.kinds[n]}
		for _, e := range entries {
			f.Series = append(f.Series, e.s)
		}
		fams = append(fams, f)
	}
	return fams
}
