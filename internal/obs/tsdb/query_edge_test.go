package tsdb

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// Windowed-query edge cases: empty windows, single-sample rates,
// ring-wrap clipping (and the completeness bit that reports it), and
// quantiles over observation-free histograms.

func TestQueryEmptyWindow(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Interval: time.Second, Capacity: 8})

	// An event series whose lone sample is older than the DB's newest
	// written time: a short window holds no samples at all.
	ev := db.EventSeries("pulse", 8)
	ev.Append(1*time.Second, 42)
	g := reg.Gauge("depth")
	g.Set(1)
	clk.t = 10 * time.Second
	db.Scrape() // advances db.last to 10s

	if _, ok := db.Avg("pulse", 2*time.Second); ok {
		t.Fatal("Avg over an empty window must be ok=false, not 0")
	}
	if _, ok := db.Max("pulse", 2*time.Second); ok {
		t.Fatal("Max over an empty window must be ok=false")
	}
	if _, ok := db.Rate("pulse", 2*time.Second); ok {
		t.Fatal("Rate over an empty window must be ok=false")
	}
	// Latest ignores windows and still answers.
	if s, ok := db.Latest("pulse"); !ok || s.V != 42 {
		t.Fatalf("Latest = %+v ok=%v, want 42", s, ok)
	}
}

func TestQuerySingleSampleRate(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Interval: time.Second, Capacity: 8})
	c := reg.Counter("events_total")
	c.Add(7)
	clk.t = time.Second
	db.Scrape()

	// One retained sample: no interval to divide over.
	if _, ok := db.Rate("events_total", time.Hour); ok {
		t.Fatal("Rate over a single sample must be ok=false")
	}
	// Two samples at the same timestamp: dt=0 is equally unanswerable.
	ev := db.EventSeries("burst", 4)
	ev.Append(2*time.Second, 1)
	ev.Append(2*time.Second, 5)
	if _, ok := db.Rate("burst", time.Hour); ok {
		t.Fatal("Rate with zero elapsed time must be ok=false")
	}
}

func TestQueryWindowClippedByRingWrap(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Interval: time.Second, Capacity: 4})
	g := reg.Gauge("depth")
	// 8 scrapes through a 4-slot ring: t=1..8s written, t=5..8s retained.
	for i := 1; i <= 8; i++ {
		clk.t = time.Duration(i) * time.Second
		g.Set(float64(i))
		db.Scrape()
	}

	s := db.series[seriesKey("depth", nil)]
	if s.n != 4 || s.drops != 4 {
		t.Fatalf("ring state n=%d drops=%d, want 4/4", s.n, s.drops)
	}

	// A 10s window reaches past everything the ring retains: the query
	// silently truncates to the retained samples...
	if a, ok := db.Avg("depth", 10*time.Second); !ok || !almost(a, 6.5) {
		t.Fatalf("Avg(clipped) = %v ok=%v, want 6.5 over retained 5..8", a, ok)
	}
	// ...and CountSince's completeness bit is how callers detect it.
	if n, complete := s.CountSince(0); n != 4 || complete {
		t.Fatalf("CountSince(0) = %d complete=%v, want 4/false (window clipped)", n, complete)
	}
	// A window fully inside the retained range is complete even though
	// the ring has wrapped.
	if n, complete := s.CountSince(6 * time.Second); n != 3 || !complete {
		t.Fatalf("CountSince(6s) = %d complete=%v, want 3/true", n, complete)
	}
	// Before any eviction the bit is always true.
	clk2 := &fakeClock{}
	reg2 := obs.NewRegistry(clk2)
	db2 := New(reg2, clk2, Config{Capacity: 4})
	ev := db2.EventSeries("x", 4)
	ev.Append(time.Second, 1)
	if n, complete := ev.CountSince(0); n != 1 || !complete {
		t.Fatalf("CountSince pre-wrap = %d complete=%v, want 1/true", n, complete)
	}
}

func TestQuantileAllZeroBuckets(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Interval: time.Second, Capacity: 8})
	reg.Histogram("latency", obs.DefLatencyBuckets)
	clk.t = time.Second
	db.Scrape() // snapshot exists, every bucket zero

	if _, ok := db.Quantile("latency", 0.99, time.Hour); ok {
		t.Fatal("Quantile over an observation-free histogram must be ok=false")
	}

	// After real observations the same query answers; a later window
	// whose delta is all-zero (no new observations inside it) again
	// declines rather than fabricating a 0.
	h := reg.Histogram("latency", obs.DefLatencyBuckets)
	h.Observe(0.05)
	clk.t = 2 * time.Second
	db.Scrape()
	if _, ok := db.Quantile("latency", 0.5, time.Hour); !ok {
		t.Fatal("Quantile with observations should answer")
	}
	clk.t = 20 * time.Second
	db.Scrape()
	if _, ok := db.Quantile("latency", 0.5, 5*time.Second); ok {
		t.Fatal("Quantile over a window with zero new observations must be ok=false")
	}
}
