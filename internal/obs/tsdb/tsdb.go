// Package tsdb is a deterministic in-memory time-series store on the
// virtual clock: it periodically scrapes an obs.Registry into
// fixed-capacity ring-buffer series — counters as monotonic samples,
// gauges as last-value samples, histograms as cumulative bucket
// snapshots — and answers windowed range queries (rate, avg, max,
// histogram quantile) over them.
//
// Determinism boundary: every write happens in sim context (the
// scrape daemon, manual Scrape calls, event-series Append) and every
// sample carries a virtual timestamp, so the stored data is
// byte-for-byte reproducible for a given scenario. Reads are
// additionally safe from other goroutines — the live HTTP server
// queries a running simulation under the DB's RWMutex, and
// wall-clock-side queries evaluate "now" as the last written virtual
// time (LastTime), never by touching the simulation clock.
//
// Scrapes add no allocations in the steady state: the flattened
// instrument list is cached and rebuilt only when the registry's
// structural generation changes, and rings are preallocated at
// creation.
package tsdb

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// Config parameterizes a DB.
type Config struct {
	// Interval is the scrape cadence on the virtual clock (default 1s).
	Interval time.Duration
	// Capacity is the per-series ring size in samples (default 512).
	// Once full, the oldest samples are overwritten; windowed queries
	// reaching past the oldest retained sample see a truncated window.
	Capacity int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	return c
}

// Sample is one scalar observation at a virtual time.
type Sample struct {
	T time.Duration
	V float64
}

// Series is one scalar ring: a scraped counter or gauge, a recording
// rule's output, or a direct-append event series. All mutation goes
// through the owning DB's lock.
type Series struct {
	db     *DB
	name   string
	labels []obs.Label
	lkey   string // rendered sorted labels, the deterministic sort key
	ring   []Sample
	head   int // index of the oldest sample
	n      int
	drops  int64
}

// Name returns the series' family name.
func (s *Series) Name() string { return s.name }

// Labels returns the series' canonical labels (read-only).
func (s *Series) Labels() []obs.Label { return s.labels }

// histSeries is a histogram ring: per-sample cumulative bucket counts
// (stride = len(bounds)+1, the last slot the +Inf total), sums, and
// times, stored flat and strided so a scrape is pure copying.
type histSeries struct {
	name   string
	labels []obs.Label
	lkey   string
	bounds []float64
	stride int
	times  []time.Duration
	cum    []uint64
	sums   []float64
	head   int
	n      int
}

// target binds one registry instrument to its ring.
type target struct {
	c  *obs.Counter
	g  *obs.Gauge
	h  *obs.Histogram
	s  *Series
	hs *histSeries
}

type rule struct {
	fn func(q Querier, now time.Duration) (float64, bool)
	s  *Series
}

// DB is the store. Writes (scrapes, appends) must come from sim
// context; reads may come from any goroutine.
type DB struct {
	mu    sync.RWMutex
	reg   *obs.Registry
	clock obs.Clock
	cfg   Config

	gen     uint64
	targets []target
	series  map[string]*Series // name+labels -> scalar ring
	hists   map[string]*histSeries
	kinds   map[string]obs.Kind
	rules   []rule

	scrapes int64
	last    time.Duration

	alerts     []*Alert
	pendingEv  []pendingAlertEvent
	delivering bool

	stop    *devent.Event
	started bool
}

// New creates a DB scraping reg with virtual timestamps from clock.
// Nothing is recorded until Scrape runs (directly or via Start).
func New(reg *obs.Registry, clock obs.Clock, cfg Config) *DB {
	return &DB{
		reg:    reg,
		clock:  clock,
		cfg:    cfg.withDefaults(),
		series: make(map[string]*Series),
		hists:  make(map[string]*histSeries),
		kinds:  make(map[string]obs.Kind),
	}
}

// Interval returns the configured scrape cadence.
func (db *DB) Interval() time.Duration {
	if db == nil {
		return 0
	}
	return db.cfg.Interval
}

// seriesKey joins a family name with canonical (sorted) labels.
func seriesKey(name string, labels []obs.Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// labelKey renders sorted labels for deterministic ordering.
func labelKey(labels []obs.Label) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []obs.Label) []obs.Label {
	ls := append([]obs.Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Scrape records one sample per registry instrument at the current
// virtual time, then evaluates recording rules and alert rules in
// registration order. Must be called from sim context; safe on a nil
// DB. Steady-state cost is ring writes only — the instrument list is
// cached and rebuilt only when the registry's generation moved. Alert
// transitions are delivered to their OnEvent listeners after the DB
// lock is released, so listeners may re-enter the DB.
func (db *DB) Scrape() {
	if db == nil {
		return
	}
	db.mu.Lock()
	db.scrapeLocked(db.clock.Now())
	db.mu.Unlock()
	db.deliverAlertEvents()
}

func (db *DB) scrapeLocked(now time.Duration) {
	if g := db.reg.Gen(); g != db.gen {
		db.rebuild()
		db.gen = g
	}
	for i := range db.targets {
		t := &db.targets[i]
		switch {
		case t.c != nil:
			t.s.push(now, t.c.Value())
		case t.g != nil:
			t.s.push(now, t.g.Value())
		default:
			t.hs.push(now, t.h)
		}
	}
	if len(db.rules) > 0 {
		q := view{db}
		for i := range db.rules {
			r := &db.rules[i]
			if v, ok := r.fn(q, now); ok {
				r.s.push(now, v)
			}
		}
	}
	db.scrapes++
	if now > db.last {
		db.last = now
	}
	if len(db.alerts) > 0 {
		db.evalAlertsLocked(now)
	}
}

// rebuild reflattens the registry into scrape targets, creating rings
// for series not seen before. Existing rings (and their history) are
// kept.
func (db *DB) rebuild() {
	db.targets = db.targets[:0]
	db.reg.VisitSeries(func(name string, kind obs.Kind, inst any) {
		db.kinds[name] = kind
		switch v := inst.(type) {
		case *obs.Counter:
			db.targets = append(db.targets, target{c: v, s: db.scalar(name, v.Labels())})
		case *obs.Gauge:
			db.targets = append(db.targets, target{g: v, s: db.scalar(name, v.Labels())})
		case *obs.Histogram:
			key := seriesKey(name, v.Labels())
			hs, ok := db.hists[key]
			if !ok {
				stride := len(v.Bounds()) + 1
				cap := db.cfg.Capacity
				hs = &histSeries{
					name:   name,
					labels: v.Labels(),
					lkey:   labelKey(v.Labels()),
					bounds: v.Bounds(),
					stride: stride,
					times:  make([]time.Duration, cap),
					cum:    make([]uint64, cap*stride),
					sums:   make([]float64, cap),
				}
				db.hists[key] = hs
			}
			db.targets = append(db.targets, target{h: v, hs: hs})
		}
	})
}

// scalar finds or creates the ring for a scalar series. Caller holds
// the lock; labels must already be canonical.
func (db *DB) scalar(name string, labels []obs.Label) *Series {
	key := seriesKey(name, labels)
	s, ok := db.series[key]
	if !ok {
		s = &Series{
			db:     db,
			name:   name,
			labels: labels,
			lkey:   labelKey(labels),
			ring:   make([]Sample, db.cfg.Capacity),
		}
		db.series[key] = s
	}
	return s
}

func (s *Series) push(t time.Duration, v float64) {
	if s.n < len(s.ring) {
		s.ring[(s.head+s.n)%len(s.ring)] = Sample{T: t, V: v}
		s.n++
		return
	}
	s.ring[s.head] = Sample{T: t, V: v}
	s.head = (s.head + 1) % len(s.ring)
	s.drops++
}

// at returns the i-th retained sample, oldest first.
func (s *Series) at(i int) Sample { return s.ring[(s.head+i)%len(s.ring)] }

func (hs *histSeries) push(now time.Duration, h *obs.Histogram) {
	slot := (hs.head + hs.n) % len(hs.times)
	if hs.n == len(hs.times) {
		slot = hs.head
		hs.head = (hs.head + 1) % len(hs.times)
	} else {
		hs.n++
	}
	hs.times[slot] = now
	hs.sums[slot] = h.Sum()
	counts := h.BucketCounts()
	base := slot * hs.stride
	cum := uint64(0)
	for i := 0; i < hs.stride; i++ {
		cum += counts[i]
		hs.cum[base+i] = cum
	}
}

// slotAt returns the ring slot of the i-th retained snapshot, oldest
// first.
func (hs *histSeries) slotAt(i int) int { return (hs.head + i) % len(hs.times) }

// EventSeries finds or creates a direct-append scalar series: instead
// of being sampled at scrape ticks, callers Append observations at
// event time — the burn-rate monitor's per-task outcomes, for example.
// capacity <= 0 takes the DB default; the name must not collide with a
// scraped registry family. The series exports as a gauge.
func (db *DB) EventSeries(name string, capacity int, labels ...obs.Label) *Series {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ls := sortLabels(labels)
	key := seriesKey(name, ls)
	s, ok := db.series[key]
	if !ok {
		if capacity <= 0 {
			capacity = db.cfg.Capacity
		}
		s = &Series{
			db:     db,
			name:   name,
			labels: ls,
			lkey:   labelKey(ls),
			ring:   make([]Sample, capacity),
		}
		db.series[key] = s
		if _, exists := db.kinds[name]; !exists {
			db.kinds[name] = obs.KindGauge
		}
	}
	return s
}

// Append records one observation at virtual time t (sim context only).
// Safe on a nil series.
func (s *Series) Append(t time.Duration, v float64) {
	if s == nil {
		return
	}
	s.db.mu.Lock()
	s.push(t, v)
	if t > s.db.last {
		s.db.last = t
	}
	s.db.mu.Unlock()
}

// CountSince returns how many retained samples have T >= t, and
// whether the window is complete (false when the ring has already
// evicted samples that could have fallen inside it).
func (s *Series) CountSince(t time.Duration) (n int, complete bool) {
	if s == nil {
		return 0, true
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	n = s.n - s.searchLocked(t)
	complete = s.drops == 0 || (s.n > 0 && s.at(0).T < t)
	return n, complete
}

// SumSince returns the sum of V over retained samples with T >= t.
func (s *Series) SumSince(t time.Duration) float64 {
	if s == nil {
		return 0
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	sum := 0.0
	for i := s.searchLocked(t); i < s.n; i++ {
		sum += s.at(i).V
	}
	return sum
}

// searchLocked returns the index (oldest-first) of the first retained
// sample with T >= t. Samples are time-ordered because all writers
// observe one virtual clock.
func (s *Series) searchLocked(t time.Duration) int {
	return sort.Search(s.n, func(i int) bool { return s.at(i).T >= t })
}

// AddRule registers a recording rule: fn runs after every scrape's
// instrument pass (in registration order) against the freshly written
// samples, and its result is recorded as a new series under name.
// Returning ok=false skips the sample for that tick. The Querier
// passed to fn reads the DB without extra locking — fn must not call
// other DB methods.
func (db *DB) AddRule(name string, labels []obs.Label, fn func(q Querier, now time.Duration) (float64, bool)) *Series {
	if db == nil {
		return nil
	}
	s := db.EventSeries(name, 0, labels...)
	db.mu.Lock()
	db.rules = append(db.rules, rule{fn: fn, s: s})
	db.mu.Unlock()
	return s
}

// Scrapes returns how many scrape passes have run.
func (db *DB) Scrapes() int64 {
	if db == nil {
		return 0
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.scrapes
}

// LastTime returns the newest virtual time written to the DB — the
// reference "now" for wall-clock-side windowed queries.
func (db *DB) LastTime() time.Duration {
	if db == nil {
		return 0
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.last
}

// Start spawns the scrape daemon on env: one Scrape every
// Config.Interval of virtual time until Stop is called. The loop holds
// a pending timer, so a forgotten Stop keeps the simulation from
// draining — Platform.Run pairs the two around the workload. No-op if
// already started or on a nil DB.
func (db *DB) Start(env *devent.Env) {
	if db == nil || db.started {
		return
	}
	db.started = true
	db.stop = env.NewNamedEvent("tsdb-stop")
	env.Spawn("tsdb-scrape", func(p *devent.Proc) {
		for {
			if _, err := p.WaitTimeout(db.stop, db.cfg.Interval); !errors.Is(err, devent.ErrTimeout) {
				return
			}
			db.Scrape()
		}
	})
}

// Stop ends the scrape daemon so the event queue can drain. Safe to
// call more than once, from sim context or after the run.
func (db *DB) Stop() {
	if db == nil || db.stop == nil || db.stop.Fired() {
		return
	}
	db.stop.Fire(nil)
}
