package tsdb

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestScrapeAndScalarQueries(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Interval: time.Second, Capacity: 8})

	c := reg.Counter("tasks_total", obs.L("app", "a"))
	g := reg.Gauge("queue_depth")
	for i := 1; i <= 5; i++ {
		clk.t = time.Duration(i) * time.Second
		c.Add(float64(10 * i)) // 10, 30, 60, 100, 150 cumulative
		g.Set(float64(i))
		db.Scrape()
	}

	if got := db.Scrapes(); got != 5 {
		t.Fatalf("Scrapes() = %d, want 5", got)
	}
	if got := db.LastTime(); got != 5*time.Second {
		t.Fatalf("LastTime() = %v, want 5s", got)
	}
	if s, ok := db.Latest("tasks_total", obs.L("app", "a")); !ok || s.V != 150 || s.T != 5*time.Second {
		t.Fatalf("Latest counter = %+v ok=%v", s, ok)
	}
	// Unknown series and label mismatches answer ok=false.
	if _, ok := db.Latest("tasks_total"); ok {
		t.Fatal("Latest without labels should miss the labelled series")
	}
	if _, ok := db.Latest("nope"); ok {
		t.Fatal("Latest on unknown series should be ok=false")
	}
	// Rate over the last 2s: samples at t=3,4,5 → (150-60)/2s.
	if r, ok := db.Rate("tasks_total", 2*time.Second, obs.L("app", "a")); !ok || !almost(r, 45) {
		t.Fatalf("Rate = %v ok=%v, want 45", r, ok)
	}
	// Rate over everything: (150-10)/4s = 35.
	if r, ok := db.Rate("tasks_total", time.Hour, obs.L("app", "a")); !ok || !almost(r, 35) {
		t.Fatalf("Rate(full) = %v ok=%v, want 35", r, ok)
	}
	// A single-sample window can't produce a rate.
	if _, ok := db.Rate("tasks_total", 0, obs.L("app", "a")); ok {
		t.Fatal("Rate over a single sample should be ok=false")
	}
	if a, ok := db.Avg("queue_depth", 2*time.Second); !ok || !almost(a, 4) {
		t.Fatalf("Avg = %v ok=%v, want 4", a, ok)
	}
	if m, ok := db.Max("queue_depth", time.Hour); !ok || m != 5 {
		t.Fatalf("Max = %v ok=%v, want 5", m, ok)
	}
	got := db.Samples("queue_depth", 2*time.Second, 4*time.Second)
	want := []Sample{{2 * time.Second, 2}, {3 * time.Second, 3}, {4 * time.Second, 4}}
	if len(got) != len(want) {
		t.Fatalf("Samples = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Samples[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRingEviction(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Capacity: 4})
	g := reg.Gauge("v")
	for i := 1; i <= 10; i++ {
		clk.t = time.Duration(i) * time.Second
		g.Set(float64(i))
		db.Scrape()
	}
	// Only the newest 4 samples survive: t=7..10.
	got := db.Samples("v", 0, 0)
	if len(got) != 4 || got[0].T != 7*time.Second || got[3].T != 10*time.Second {
		t.Fatalf("retained = %v, want t=7s..10s", got)
	}
	if a, ok := db.Avg("v", time.Hour); !ok || !almost(a, 8.5) {
		t.Fatalf("Avg over evicted window = %v ok=%v, want 8.5", a, ok)
	}
}

func TestHistogramQuantileWindow(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Capacity: 16})
	h := reg.Histogram("lat", []float64{0.1, 1, 10})

	clk.t = time.Second
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // all in the first bucket
	}
	db.Scrape()

	clk.t = 2 * time.Second
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in the third bucket
	}
	db.Scrape()

	// Over the full history the median straddles the two populations.
	if q, ok := db.Quantile("lat", 0.99, time.Hour); !ok || q <= 1 || q > 10 {
		t.Fatalf("Quantile(full, .99) = %v ok=%v, want in (1,10]", q, ok)
	}
	// A 500ms window reaches only the newest snapshot; its baseline is
	// the t=1s snapshot, so the delta holds just the slow population.
	if q, ok := db.Quantile("lat", 0.5, 500*time.Millisecond); !ok || q <= 1 {
		t.Fatalf("Quantile(window, .5) = %v ok=%v, want > 1", q, ok)
	}
	// An empty window delta answers ok=false.
	clk.t = 3 * time.Second
	db.Scrape()
	if _, ok := db.Quantile("lat", 0.5, 500*time.Millisecond); ok {
		t.Fatal("Quantile over an empty delta should be ok=false")
	}
}

func TestRebuildKeepsHistory(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Capacity: 8})
	a := reg.Counter("a_total")
	clk.t = time.Second
	a.Inc()
	db.Scrape()

	// A new instrument appears mid-run: the rebuild must pick it up
	// without losing a_total's history.
	b := reg.Counter("b_total")
	clk.t = 2 * time.Second
	a.Inc()
	b.Inc()
	db.Scrape()

	if got := db.Samples("a_total", 0, 0); len(got) != 2 || got[0].V != 1 || got[1].V != 2 {
		t.Fatalf("a_total history = %v, want [1 2]", got)
	}
	if got := db.Samples("b_total", 0, 0); len(got) != 1 || got[0].V != 1 {
		t.Fatalf("b_total history = %v, want [1]", got)
	}
}

func TestEventSeries(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Capacity: 8})
	s := db.EventSeries("slo:events", 4, obs.L("app", "x"))
	if again := db.EventSeries("slo:events", 4, obs.L("app", "x")); again != s {
		t.Fatal("EventSeries is not idempotent")
	}
	for i := 1; i <= 3; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i%2)) // 1, 0, 1
	}
	if n, complete := s.CountSince(2 * time.Second); n != 2 || !complete {
		t.Fatalf("CountSince = %d complete=%v, want 2 true", n, complete)
	}
	if sum := s.SumSince(0); !almost(sum, 2) {
		t.Fatalf("SumSince(0) = %v, want 2", sum)
	}
	// Overflow the capacity-4 ring; the window completeness flag must
	// drop once evicted samples could have fallen inside the window.
	for i := 4; i <= 8; i++ {
		s.Append(time.Duration(i)*time.Second, 1)
	}
	if _, complete := s.CountSince(time.Second); complete {
		t.Fatal("CountSince reaching past evicted samples should report incomplete")
	}
	if n, complete := s.CountSince(6 * time.Second); n != 3 || !complete {
		t.Fatalf("CountSince(6s) = %d complete=%v, want 3 true", n, complete)
	}
	if db.LastTime() != 8*time.Second {
		t.Fatalf("LastTime = %v, want 8s", db.LastTime())
	}
}

func TestRecordingRules(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Capacity: 8})
	c := reg.Counter("done_total")
	db.AddRule("done:rate", nil, func(q Querier, now time.Duration) (float64, bool) {
		return q.Rate("done_total", 2*time.Second)
	})
	for i := 1; i <= 4; i++ {
		clk.t = time.Duration(i) * time.Second
		c.Add(10)
		db.Scrape()
	}
	// First tick has one sample (no rate); afterwards 10/s.
	got := db.Samples("done:rate", 0, 0)
	if len(got) != 3 {
		t.Fatalf("rule samples = %v, want 3", got)
	}
	for _, s := range got {
		if !almost(s.V, 10) {
			t.Fatalf("rule sample %v, want V=10", s)
		}
	}
}

func TestStartStopDaemon(t *testing.T) {
	env := devent.NewEnv()
	reg := obs.NewRegistry(env)
	db := New(reg, env, Config{Interval: time.Second, Capacity: 64})
	g := reg.Gauge("tick")

	db.Start(env)
	env.Spawn("workload", func(p *devent.Proc) {
		for i := 1; i <= 10; i++ {
			p.Sleep(time.Second)
			g.Set(float64(i))
		}
		// Let the 10th scrape tick land unambiguously before stopping:
		// a stop firing at the same instant as the timer wins the race
		// and would drop that tick.
		p.Sleep(time.Second / 2)
		db.Stop()
	})
	if err := env.Run(); err != nil {
		t.Fatalf("env.Run: %v", err)
	}
	if got := db.Scrapes(); got != 10 {
		t.Fatalf("Scrapes = %d, want 10 (1/s over a 10s workload)", got)
	}
	s, ok := db.Latest("tick")
	if !ok || s.T != 10*time.Second {
		t.Fatalf("Latest = %+v ok=%v, want a sample at 10s", s, ok)
	}
	// Same-instant ordering between the daemon's tick and the
	// workload's Set is fixed by spawn order; either phase is
	// deterministic, so only the one-set-wide envelope is asserted.
	if s.V != 9 && s.V != 10 {
		t.Fatalf("Latest V = %v, want the 9th or 10th set value", s.V)
	}
	db.Stop() // idempotent after the run
}

func TestExpositionConformance(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry(clk)
	db := New(reg, clk, Config{Capacity: 8})
	reg.Counter("tasks_total", obs.L("app", "a")).Add(3)
	reg.Counter("tasks_total", obs.L("app", "b")).Add(4)
	reg.Gauge("depth").Set(7)
	h := reg.Histogram("lat", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	db.EventSeries("burn", 8).Append(time.Second, 1.5)
	clk.t = time.Second
	db.Scrape()

	e := obs.NewExposition()
	e.Add(db.Exposition(obs.L("scope", "test"))...)
	var buf bytes.Buffer
	if err := e.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if err := obs.LintPrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, buf.Bytes())
	}
	for _, want := range []string{
		`tasks_total{app="a",scope="test"} 3`,
		`depth{scope="test"} 7`,
		`burn{scope="test"} 1.5`,
		`lat_bucket{le="+Inf",scope="test"} 2`,
		`lat_count{scope="test"} 2`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want+"\n")) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.Bytes())
		}
	}

	// List covers every series deterministically.
	infos := db.List()
	if len(infos) != 5 {
		t.Fatalf("List() = %d series, want 5: %+v", len(infos), infos)
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name > infos[i].Name {
			t.Fatalf("List() not sorted: %+v", infos)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var db *DB
	db.Scrape()
	db.Start(nil)
	db.Stop()
	if _, ok := db.Latest("x"); ok {
		t.Fatal("nil DB Latest should be ok=false")
	}
	if db.List() != nil || db.Samples("x", 0, 0) != nil || db.Exposition() != nil {
		t.Fatal("nil DB slices should be nil")
	}
	var s *Series
	s.Append(0, 1)
	if n, _ := s.CountSince(0); n != 0 {
		t.Fatal("nil Series should be empty")
	}
}
