package repart

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/devent"
	"repro/internal/faas"
	"repro/internal/faas/htex"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
	"repro/internal/weightcache"
)

// Tenant is one workload under control: a FaaS app pinned to its own
// executor (the paper's one-process-per-tenant deployment), plus the
// memory footprint the packers must account for.
type Tenant struct {
	// Name keys the tenant in plans, metrics, and spans.
	Name string
	// App is the FaaS app whose registry series (submissions,
	// completions, run-time histogram) drive the policy.
	App string
	// Exec is the tenant's dedicated executor; transitions restart it
	// with a new accelerator list and GPU percentages.
	Exec *htex.HTEX
	// Accelerator is the device reference MPS workers bind to ("0").
	Accelerator string
	// WeightBytes is the model footprint, counted once per tenant:
	// the weight cache shares one resident copy across the tenant's
	// workers.
	WeightBytes int64
	// WorkspaceBytes is the per-worker activation/KV workspace.
	WorkspaceBytes int64
}

// Config assembles a Controller.
type Config struct {
	Env    *devent.Env
	Spec   Spec
	Obs    *obs.Collector
	Device *simgpu.Device
	// Cache, when set, is evicted on MIG relayouts (instance memory
	// pools die with the old layout; under MPS the cache survives and
	// restarted workers re-attach for free).
	Cache   *weightcache.Cache
	Tenants []Tenant
}

// tenantState is the controller's per-tenant bookkeeping.
type tenantState struct {
	t       Tenant
	workers int
	pct     int    // per-worker MPS percentage (0 = uncapped)
	profile string // MIG profile (mode=mig)
	// curve is the online latency profile: per-worker SM budget →
	// latest observed mean task run time (seconds).
	curve map[int]float64
	// sampleSMs is the budget the current observation window runs
	// under; windows are keyed by it, not by the budget a transition
	// just installed, so completions are attributed to the partition
	// they actually ran on.
	sampleSMs int
	// mixed marks the window straddling a restart: its completions ran
	// under two partitions (or paid the drain stall), so it is not
	// recorded on the curve.
	mixed bool
	// registry snapshots from the previous tick.
	lastSum   float64
	lastCount uint64
	// queue-delay histogram snapshots, for the decide span's
	// phase-context attributes.
	lastQSum   float64
	lastQCount uint64
	// gauges exported per tenant.
	gPct     *obs.Gauge
	gWorkers *obs.Gauge
}

// Controller is the online repartitioning loop. Create with New,
// Start after the tenant executors are running, Stop when the
// workload's main proc finishes (so the event queue drains).
type Controller struct {
	env     *devent.Env
	spec    Spec
	obsC    *obs.Collector
	dev     *simgpu.Device
	cache   *weightcache.Cache
	tenants []*tenantState
	stop    *devent.Event
	// planner is the fleet-API planning surface for the controller's
	// device — the degenerate single-GPU case of cluster placement,
	// delegating to the rightsize packers so plans are bit-identical to
	// calling them directly.
	planner fleet.Planner

	layout         []string // current MIG layout (mode=mig)
	lastTransition time.Duration
	transitioned   bool
	transitions    int

	cDecisions   *obs.Counter
	cTransitions *obs.Counter
	cSkips       *obs.Counter
}

// New builds a controller over started tenant executors, seeding each
// tenant's state from its executor's current configuration.
func New(cfg Config) (*Controller, error) {
	if cfg.Env == nil || cfg.Obs == nil || cfg.Device == nil {
		return nil, errors.New("repart: Env, Obs, and Device are required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("repart: no tenants")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		env:     cfg.Env,
		spec:    cfg.Spec.withDefaults(),
		obsC:    cfg.Obs,
		dev:     cfg.Device,
		cache:   cfg.Cache,
		planner: fleet.NewPlanner(cfg.Device.Spec()),
	}
	m := cfg.Obs.Metrics()
	c.cDecisions = m.Counter("repart_decisions_total")
	c.cTransitions = m.Counter("repart_transitions_total")
	c.cSkips = m.Counter("repart_skips_total")
	for _, t := range cfg.Tenants {
		if t.Exec == nil {
			return nil, fmt.Errorf("repart: tenant %q has no executor", t.Name)
		}
		ec := t.Exec.Config()
		ts := &tenantState{
			t:       t,
			workers: len(ec.AvailableAccelerators),
			curve:   make(map[int]float64),
			gPct:    m.Gauge("repart_tenant_percent", obs.L("tenant", t.Name)),
			gWorkers: m.Gauge("repart_tenant_workers",
				obs.L("tenant", t.Name)),
		}
		if len(ec.GPUPercentages) > 0 {
			ts.pct = ec.GPUPercentages[0]
		}
		ts.gPct.Set(float64(ts.pct))
		ts.gWorkers.Set(float64(ts.workers))
		c.tenants = append(c.tenants, ts)
	}
	for _, ts := range c.tenants {
		ts.sampleSMs = c.perWorkerSMs(ts)
	}
	return c, nil
}

// Transitions reports how many repartitioning transitions were
// applied.
func (c *Controller) Transitions() int { return c.transitions }

// Start launches the control loop: one tick per Spec.Interval on the
// virtual clock.
func (c *Controller) Start() {
	if c.stop != nil {
		return
	}
	c.stop = c.env.NewNamedEvent("repart-stop")
	c.env.Spawn("repart-ctl", func(p *devent.Proc) {
		for {
			if _, err := p.WaitTimeout(c.stop, c.spec.Interval); !errors.Is(err, devent.ErrTimeout) {
				return
			}
			c.tick(p)
		}
	})
}

// Stop ends the control loop; the workload's main proc calls it so
// the simulation can drain.
func (c *Controller) Stop() {
	if c.stop != nil && !c.stop.Fired() {
		c.stop.Fire(nil)
	}
}

// window holds one tenant's per-tick observation. runMean and
// queueMean (seconds) summarize where the tenant's tasks spent the
// last window — the phase context recorded on the decide span.
type window struct {
	outstanding int
	targetW     int
	targetSMs   int
	runMean     float64
	queueMean   float64
}

// tick is one control decision: read per-tenant registry deltas,
// recompute right-sized demands, pack, and transition if the plan
// moved beyond the hysteresis band.
func (c *Controller) tick(p *devent.Proc) {
	c.cDecisions.Inc()
	span := c.obsC.StartSpan("repart", "decide", "repart", 0,
		obs.String("policy", string(c.spec.Policy)),
		obs.String("mode", c.spec.Mode))
	obsv := c.observe()
	var decision string
	if c.transitioned && c.spec.Cooldown > 0 && p.Now()-c.lastTransition < c.spec.Cooldown {
		decision = "cooldown"
		c.cSkips.Inc()
	} else if c.spec.Mode == ModeMIG {
		decision = c.planMIG(p, span, obsv)
	} else {
		decision = c.planMPS(p, span, obsv)
	}
	// The decide span carries each tenant's phase context — where the
	// last window's latency went — so a trace reader (or tracediff)
	// can see what evidence the decision acted on.
	attrs := []obs.Attr{
		obs.String("decision", decision),
		obs.String("plan", c.planString()),
	}
	for i, ts := range c.tenants {
		w := obsv[i]
		blame := "run"
		if w.queueMean > w.runMean {
			blame = "queue"
		}
		attrs = append(attrs, obs.String("phase:"+ts.t.Name,
			fmt.Sprintf("sms=%d backlog=%d run_ms=%.1f queue_ms=%.1f blame=%s",
				w.targetSMs, w.outstanding, w.runMean*1e3, w.queueMean*1e3, blame)))
	}
	c.obsC.EndSpan(span, attrs...)
}

// observe reads each tenant's registry window: backlog from the
// submitted/completed counters, and a new point on the latency curve
// from the run-time histogram delta (keyed by the per-worker SM budget
// the window ran under).
func (c *Controller) observe() []window {
	m := c.obsC.Metrics()
	spec := c.dev.Spec()
	out := make([]window, len(c.tenants))
	for i, ts := range c.tenants {
		app := obs.L("app", ts.t.App)
		submitted := m.Counter("faas_tasks_submitted_total", app).Value()
		var done float64
		for _, st := range faas.TerminalStatuses {
			done += m.Counter("faas_tasks_completed_total", app, obs.L("status", st.String())).Value()
		}
		h := m.Histogram("faas_task_run_seconds", nil, app)
		dSum, dCount := h.Sum()-ts.lastSum, h.Count()-ts.lastCount
		ts.lastSum, ts.lastCount = h.Sum(), h.Count()
		if dCount > 0 && !ts.mixed {
			ts.curve[ts.sampleSMs] = dSum / float64(dCount)
		}
		ts.mixed = false
		w := window{outstanding: int(submitted - done)}
		if dCount > 0 {
			w.runMean = dSum / float64(dCount)
		}
		qh := m.Histogram("faas_task_queue_delay_seconds", nil, app)
		dQSum, dQCount := qh.Sum()-ts.lastQSum, qh.Count()-ts.lastQCount
		ts.lastQSum, ts.lastQCount = qh.Sum(), qh.Count()
		if dQCount > 0 {
			w.queueMean = dQSum / float64(dQCount)
		}
		w.targetW = w.outstanding
		if w.targetW < 1 {
			w.targetW = 1
		}
		if w.targetW > c.spec.MaxWorkers {
			w.targetW = c.spec.MaxWorkers
		}
		w.targetSMs = c.targetSMs(ts, spec)
		out[i] = w
	}
	// PolicyFair ignores the curves: equal per-worker split of the
	// device across every planned worker.
	if c.spec.Policy == PolicyFair {
		total := 0
		for _, w := range out {
			total += w.targetW
		}
		share := spec.SMs / total
		if share < 1 {
			share = 1
		}
		for i := range out {
			out[i].targetSMs = share
		}
	}
	return out
}

// perWorkerSMs is the SM budget one worker of the tenant currently
// runs under.
func (c *Controller) perWorkerSMs(ts *tenantState) int {
	spec := c.dev.Spec()
	if c.spec.Mode == ModeMIG {
		if prof, err := simgpu.LookupProfile(spec, ts.profile); err == nil {
			return prof.Slices * spec.SMsPerSlice
		}
		return spec.SMs
	}
	if ts.pct <= 0 || ts.pct >= 100 {
		return spec.SMs
	}
	sms := (ts.pct*spec.SMs + 99) / 100
	if sms < 1 {
		sms = 1
	}
	return sms
}

// targetSMs right-sizes one tenant's per-worker budget: the knee of
// its observed curve (via rightsize.Recommend), probing halfway down
// when the knee sits on the smallest budget sampled so far — the
// online equivalent of the §7 sweep, converging without ever running
// an offline calibration.
func (c *Controller) targetSMs(ts *tenantState, spec simgpu.DeviceSpec) int {
	if len(ts.curve) == 0 {
		return c.perWorkerSMs(ts) // nothing observed yet: hold
	}
	var curve rightsize.Curve
	smallest := spec.SMs
	for sms := range ts.curve {
		if sms < smallest {
			smallest = sms
		}
		curve = append(curve, rightsize.Point{SMs: sms, Latency: time.Duration(ts.curve[sms] * float64(time.Second))})
	}
	curve.Sort()
	rec, err := rightsize.Recommend(spec, curve, c.spec.Tolerance, ts.t.WeightBytes+ts.t.WorkspaceBytes)
	if err != nil {
		return c.perWorkerSMs(ts)
	}
	target := rec.KneeSMs
	if target == smallest && target > c.spec.MinSMs {
		if probe := max(c.spec.MinSMs, target/2); probe < target {
			if _, tried := ts.curve[probe]; !tried {
				target = probe
			}
		}
	}
	return target
}

// planMPS packs per-worker demands into GPU percentages and restarts
// the executors whose configuration moved beyond the hysteresis band.
// Memory pressure sheds workers from the widest tenant first.
func (c *Controller) planMPS(p *devent.Proc, parent obs.SpanID, obsv []window) string {
	var plan *rightsize.MPSPlan
	for {
		var demands []rightsize.TenantDemand
		for i, ts := range c.tenants {
			for j := 0; j < obsv[i].targetW; j++ {
				mem := ts.t.WorkspaceBytes
				if j == 0 {
					mem += ts.t.WeightBytes // cache shares weights across the tenant's workers
				}
				demands = append(demands, rightsize.TenantDemand{
					Name:     fmt.Sprintf("%s/%d", ts.t.Name, j),
					SMs:      obsv[i].targetSMs,
					MemBytes: mem,
				})
			}
		}
		var err error
		plan, err = c.planner.PlanMPS(demands)
		if err == nil {
			break
		}
		// Shed a worker from the widest tenant and retry; if every
		// tenant is down to one worker the demands are unservable as
		// stated — hold the current partitioning.
		widest, most := -1, 1
		for i := range obsv {
			if obsv[i].targetW > most {
				widest, most = i, obsv[i].targetW
			}
		}
		if widest < 0 {
			c.cSkips.Inc()
			return "infeasible"
		}
		obsv[widest].targetW--
	}
	// One cap per tenant: the max over its workers' apportioned
	// percentages, so all workers of a tenant share a single value.
	pcts := make([]int, len(c.tenants))
	ai := 0
	for i := range c.tenants {
		for j := 0; j < obsv[i].targetW; j++ {
			if pct := plan.Assignments[ai].Percent; pct > pcts[i] {
				pcts[i] = pct
			}
			ai++
		}
	}
	changed := false
	for i, ts := range c.tenants {
		if obsv[i].targetW != ts.workers || abs(pcts[i]-ts.pct) >= c.spec.DeltaPct {
			changed = true
		}
	}
	if !changed {
		c.cSkips.Inc()
		return "hold"
	}
	tspan := c.obsC.StartSpan("repart", "transition", "repart", parent,
		obs.String("mechanism", "mps-restart"))
	for i, ts := range c.tenants {
		if obsv[i].targetW == ts.workers && abs(pcts[i]-ts.pct) < c.spec.DeltaPct {
			continue // this tenant's partition is unchanged
		}
		accels := make([]string, obsv[i].targetW)
		pl := make([]int, obsv[i].targetW)
		for j := range accels {
			accels[j] = ts.t.Accelerator
			pl[j] = pcts[i]
		}
		if err := ts.t.Exec.Restart(p, accels, pl); err != nil {
			c.env.Fail(fmt.Errorf("repart: restarting %q: %w", ts.t.Name, err))
			c.obsC.EndSpan(tspan, obs.String("status", "failed"))
			return "failed"
		}
		ts.workers, ts.pct = obsv[i].targetW, pcts[i]
		ts.mixed = true
		ts.sampleSMs = c.perWorkerSMs(ts)
		ts.gPct.Set(float64(ts.pct))
		ts.gWorkers.Set(float64(ts.workers))
	}
	c.obsC.EndSpan(tspan)
	c.noteTransition(p)
	return "transition"
}

// planMIG packs tenant demands into a MIG layout and, when the layout
// moved, drains every tenant, reconfigures the device, and restarts
// each executor on its new instance. Instance memory pools die with
// the old layout, so cached weights are evicted first (MIG is the one
// mechanism the weight cache cannot carry across — paper §7).
func (c *Controller) planMIG(p *devent.Proc, parent obs.SpanID, obsv []window) string {
	spec := c.dev.Spec()
	demands := make([]rightsize.TenantDemand, len(c.tenants))
	for i, ts := range c.tenants {
		sms := obsv[i].targetSMs
		// A MIG device can slice out at most MIGSlices·SMsPerSlice SMs
		// (98 of the A100's 108): a whole-device demand means "the
		// largest instance", not "unpackable".
		if cap := spec.MIGSlices * spec.SMsPerSlice; sms > cap {
			sms = cap
		}
		demands[i] = rightsize.TenantDemand{
			Name:     ts.t.Name,
			SMs:      sms,
			MemBytes: ts.t.WeightBytes + ts.t.WorkspaceBytes,
		}
	}
	// PackMIG rejects unplaceable layouts outright (two fresh tenants
	// both demand the whole device → two 7g instances), so shrink: step
	// the widest tenant's demand down one profile rung — never below
	// its memory floor — and retry, the MIG analogue of the MPS
	// worker-shedding loop.
	profiles := simgpu.MIGProfilesFor(spec)
	var plan *rightsize.MIGPlan
	for {
		var err error
		plan, err = c.planner.PlanMIG(demands)
		if err == nil {
			break
		}
		if !shrinkMIGDemand(spec, profiles, demands) {
			c.cSkips.Inc()
			return "infeasible"
		}
	}
	same := len(plan.Assignments) == len(c.tenants)
	for i, a := range plan.Assignments {
		if same && a.Profile != c.tenants[i].profile {
			same = false
		}
	}
	if same {
		c.cSkips.Inc()
		return "hold"
	}
	tspan := c.obsC.StartSpan("repart", "transition", "repart", parent,
		obs.String("mechanism", "mig-reconfig"))
	for _, ts := range c.tenants {
		ts.t.Exec.ShutdownAndWait(p)
	}
	if c.cache != nil {
		for _, key := range c.cache.Keys() {
			c.cache.Evict(key)
		}
	}
	if err := c.dev.EnableMIG(p); err != nil {
		c.env.Fail(fmt.Errorf("repart: enabling MIG: %w", err))
		c.obsC.EndSpan(tspan, obs.String("status", "failed"))
		return "failed"
	}
	instances, err := c.dev.ConfigureMIG(p, plan.Layout)
	if err != nil {
		c.env.Fail(fmt.Errorf("repart: configuring MIG %v: %w", plan.Layout, err))
		c.obsC.EndSpan(tspan, obs.String("status", "failed"))
		return "failed"
	}
	used := make([]bool, len(instances))
	for i, ts := range c.tenants {
		uuid := ""
		for k, in := range instances {
			if !used[k] && in.Profile().Name == plan.Assignments[i].Profile {
				used[k], uuid = true, in.UUID()
				break
			}
		}
		if uuid == "" {
			c.env.Fail(fmt.Errorf("repart: no instance for tenant %q profile %s", ts.t.Name, plan.Assignments[i].Profile))
			c.obsC.EndSpan(tspan, obs.String("status", "failed"))
			return "failed"
		}
		if err := ts.t.Exec.Restart(p, []string{uuid}, nil); err != nil {
			c.env.Fail(fmt.Errorf("repart: restarting %q: %w", ts.t.Name, err))
			c.obsC.EndSpan(tspan, obs.String("status", "failed"))
			return "failed"
		}
		ts.profile = plan.Assignments[i].Profile
		ts.workers = 1
		ts.mixed = true
		ts.sampleSMs = c.perWorkerSMs(ts)
		ts.gWorkers.Set(1)
	}
	c.layout = plan.Layout
	c.obsC.EndSpan(tspan)
	c.noteTransition(p)
	return "transition"
}

// shrinkMIGDemand steps the tenant holding the largest covering
// profile down to the next smaller profile that still fits its memory,
// mutating demands in place. Returns false when no tenant can shrink
// (the plan is genuinely infeasible). Ties pick the first tenant, so
// shrinking is deterministic.
func shrinkMIGDemand(spec simgpu.DeviceSpec, profiles []simgpu.MIGProfile, demands []rightsize.TenantDemand) bool {
	covering := func(d rightsize.TenantDemand) (simgpu.MIGProfile, bool) {
		for _, p := range profiles { // ordered small → large
			if p.Slices*spec.SMsPerSlice >= d.SMs && p.MemBytes >= d.MemBytes {
				return p, true
			}
		}
		return simgpu.MIGProfile{}, false
	}
	widest, widestSl := -1, 0
	var next simgpu.MIGProfile
	for i, d := range demands {
		cur, ok := covering(d)
		if !ok || cur.Slices <= widestSl {
			continue
		}
		// The largest profile strictly below cur that still holds the
		// tenant's memory.
		var down simgpu.MIGProfile
		found := false
		for _, p := range profiles {
			if p.Slices < cur.Slices && p.MemBytes >= d.MemBytes {
				down, found = p, true
			}
		}
		if found {
			widest, widestSl, next = i, cur.Slices, down
		}
	}
	if widest < 0 {
		return false
	}
	demands[widest].SMs = next.Slices * spec.SMsPerSlice
	return true
}

func (c *Controller) noteTransition(p *devent.Proc) {
	c.transitions++
	c.transitioned = true
	c.lastTransition = p.Now()
	c.cTransitions.Inc()
}

// planString renders the current partitioning for decision spans.
func (c *Controller) planString() string {
	parts := make([]string, len(c.tenants))
	for i, ts := range c.tenants {
		if c.spec.Mode == ModeMIG {
			prof := ts.profile
			if prof == "" {
				prof = "-"
			}
			parts[i] = fmt.Sprintf("%s=%s", ts.t.Name, prof)
		} else {
			parts[i] = fmt.Sprintf("%s=%dx%d%%", ts.t.Name, ts.workers, ts.pct)
		}
	}
	return strings.Join(parts, " ")
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
