package repart

import "testing"

// FuzzParseSpec checks the -repart flag parser never panics, only
// accepts specs that validate, and is idempotent through String():
// parse → render → parse must converge.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("policy=knee,interval=10s")
	f.Add("policy=fair,mode=mig,interval=30s,tolerance=0.1,cooldown=20s,delta=5,min=8,workers=3")
	f.Add("mode=mps")
	f.Add("tolerance=1e309")
	f.Add("tolerance=NaN")
	f.Add("interval==,,=")
	f.Add("cooldown=-5s")
	f.Add("delta=101")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted invalid spec %+v: %v", s, spec, verr)
		}
		rendered := spec.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("ParseSpec(%q) → String() = %q does not reparse: %v", s, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("String() not a fixed point: %q → %q", rendered, again.String())
		}
	})
}
