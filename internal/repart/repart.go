// Package repart closes the loop the paper leaves open in §6/§7: an
// online repartitioning controller for the simulated FaaS platform.
// The paper observes that changing an MPS percentage or MIG layout
// requires killing and restarting every client process, and proposes
// weight caching precisely so such reconfiguration becomes cheap; this
// package combines the pieces the repo already has — per-tenant
// latency and backlog from the obs metrics registry, right-sizing via
// rightsize.Recommend/PackMPS/PackMIG, the htex restart/recovery path,
// and the weightcache — into a deterministic control loop on the
// virtual clock.
//
// Every input the controller reads (counters, histogram sums, the
// virtual clock) is a pure function of the simulation's event order,
// so a controlled run is reproducible byte-for-byte at any host
// parallelism, exactly like the chaos injector.
package repart

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Policy names a repartitioning decision rule.
type Policy string

const (
	// PolicyKnee right-sizes each tenant to the knee of its observed
	// latency-vs-SMs curve (probing downward to find it online) and
	// scales worker processes to the tenant's backlog.
	PolicyKnee Policy = "knee"
	// PolicyFair splits the device evenly across every tenant worker,
	// scaling only worker counts with backlog.
	PolicyFair Policy = "fair"
)

// Partitioning mechanisms the controller can drive.
const (
	// ModeMPS repartitions by restarting tenant executors with new
	// GPU percentages (the paper's §6 MPS path).
	ModeMPS = "mps"
	// ModeMIG repartitions by draining every tenant and installing a
	// new MIG instance layout via ConfigureMIG.
	ModeMIG = "mig"
)

// Spec configures a controller, parsed from the -repart flag. The
// zero Spec means "knee policy over MPS at the default cadence";
// withDefaults fills the operational values.
type Spec struct {
	// Policy is the decision rule (default knee).
	Policy Policy
	// Mode is the partitioning mechanism (default mps).
	Mode string
	// Interval is the control period on the virtual clock (default
	// 10s); each tick reads the registry deltas since the previous
	// tick.
	Interval time.Duration
	// Tolerance is the knee tolerance: latency within (1+Tolerance)
	// of the best observed counts as saturated (default 0.05).
	Tolerance float64
	// Cooldown suppresses transitions within this duration of the
	// previous one (default 0: every tick may act).
	Cooldown time.Duration
	// DeltaPct is the hysteresis band: per-worker percentage moves
	// smaller than this do not trigger a restart (default 3).
	DeltaPct int
	// MinSMs floors the per-worker demand the knee probe may explore
	// down to (default 4).
	MinSMs int
	// MaxWorkers caps the worker processes per tenant (default 4).
	MaxWorkers int
}

func (s Spec) withDefaults() Spec {
	if s.Policy == "" {
		s.Policy = PolicyKnee
	}
	if s.Mode == "" {
		s.Mode = ModeMPS
	}
	if s.Interval <= 0 {
		s.Interval = 10 * time.Second
	}
	if s.Tolerance <= 0 {
		s.Tolerance = 0.05
	}
	if s.DeltaPct <= 0 {
		s.DeltaPct = 3
	}
	if s.MinSMs <= 0 {
		s.MinSMs = 4
	}
	if s.MaxWorkers <= 0 {
		s.MaxWorkers = 4
	}
	return s
}

// Validate checks the spec's ranges.
func (s Spec) Validate() error {
	switch s.Policy {
	case "", PolicyKnee, PolicyFair:
	default:
		return fmt.Errorf("repart: unknown policy %q", s.Policy)
	}
	switch s.Mode {
	case "", ModeMPS, ModeMIG:
	default:
		return fmt.Errorf("repart: unknown mode %q", s.Mode)
	}
	if s.Interval < 0 || s.Cooldown < 0 {
		return errors.New("repart: negative time bound")
	}
	if math.IsNaN(s.Tolerance) || math.IsInf(s.Tolerance, 0) || s.Tolerance < 0 {
		return fmt.Errorf("repart: tolerance %v out of range", s.Tolerance)
	}
	if s.DeltaPct < 0 || s.DeltaPct > 100 {
		return fmt.Errorf("repart: delta %d outside [0,100]", s.DeltaPct)
	}
	if s.MinSMs < 0 {
		return fmt.Errorf("repart: negative min %d", s.MinSMs)
	}
	if s.MaxWorkers < 0 {
		return fmt.Errorf("repart: negative workers %d", s.MaxWorkers)
	}
	return nil
}

// String renders the spec in the canonical -repart flag syntax;
// ParseSpec(s.String()) reproduces s.
func (s Spec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if s.Policy != "" {
		add("policy", string(s.Policy))
	}
	if s.Mode != "" {
		add("mode", s.Mode)
	}
	if s.Interval != 0 {
		add("interval", s.Interval.String())
	}
	if s.Tolerance != 0 {
		add("tolerance", strconv.FormatFloat(s.Tolerance, 'g', -1, 64))
	}
	if s.Cooldown != 0 {
		add("cooldown", s.Cooldown.String())
	}
	if s.DeltaPct != 0 {
		add("delta", strconv.Itoa(s.DeltaPct))
	}
	if s.MinSMs != 0 {
		add("min", strconv.Itoa(s.MinSMs))
	}
	if s.MaxWorkers != 0 {
		add("workers", strconv.Itoa(s.MaxWorkers))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -repart flag syntax: comma-separated key=value
// pairs, e.g. "policy=knee,interval=10s,delta=5". Keys: policy, mode,
// interval, tolerance, cooldown, delta, min, workers. An empty string
// yields the zero Spec (controller defaults).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, pair := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || val == "" {
			return Spec{}, fmt.Errorf("repart: malformed pair %q (want key=value)", pair)
		}
		var err error
		switch key {
		case "policy":
			spec.Policy = Policy(val)
		case "mode":
			spec.Mode = val
		case "interval":
			spec.Interval, err = time.ParseDuration(val)
		case "tolerance":
			spec.Tolerance, err = strconv.ParseFloat(val, 64)
		case "cooldown":
			spec.Cooldown, err = time.ParseDuration(val)
		case "delta":
			spec.DeltaPct, err = strconv.Atoi(val)
		case "min":
			spec.MinSMs, err = strconv.Atoi(val)
		case "workers":
			spec.MaxWorkers, err = strconv.Atoi(val)
		default:
			return Spec{}, fmt.Errorf("repart: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("repart: bad %s value %q: %v", key, val, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
