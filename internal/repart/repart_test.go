package repart

import (
	"strings"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
	"repro/internal/simgpu"
)

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("policy=fair,mode=mig,interval=5s,tolerance=0.1,cooldown=30s,delta=7,min=8,workers=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Policy:     PolicyFair,
		Mode:       ModeMIG,
		Interval:   5 * time.Second,
		Tolerance:  0.1,
		Cooldown:   30 * time.Second,
		DeltaPct:   7,
		MinSMs:     8,
		MaxWorkers: 2,
	}
	if spec != want {
		t.Fatalf("got %+v, want %+v", spec, want)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "   "} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if spec != (Spec{}) {
			t.Fatalf("%q: got %+v, want zero spec", s, spec)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"policy",              // no =
		"policy=",             // empty value
		"bogus=1",             // unknown key
		"interval=fast",       // bad duration
		"tolerance=lots",      // bad float
		"delta=many",          // bad int
		"policy=magic",        // unknown policy
		"mode=sriov",          // unknown mode
		"interval=-1s",        // negative duration
		"tolerance=-0.5",      // negative tolerance
		"tolerance=NaN",       // NaN
		"delta=101",           // above 100
		"delta=-1",            // negative
		"min=-4",              // negative
		"workers=-2",          // negative
		"policy=knee,,min=4",  // empty pair
		"interval=10s,policy", // trailing malformed pair
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

// TestSpecStringRoundTrip checks the documented contract:
// ParseSpec(s.String()) == s for any valid spec.
func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Policy: PolicyKnee},
		{Mode: ModeMIG, Interval: time.Minute},
		{Policy: PolicyFair, Mode: ModeMPS, Interval: 10 * time.Second, Tolerance: 0.05,
			Cooldown: 20 * time.Second, DeltaPct: 3, MinSMs: 4, MaxWorkers: 4},
	}
	for _, want := range specs {
		got, err := ParseSpec(want.String())
		if err != nil {
			t.Errorf("round-trip %+v: %v", want, err)
			continue
		}
		if got != want {
			t.Errorf("round-trip %q: got %+v, want %+v", want.String(), got, want)
		}
	}
}

func TestSpecStringZero(t *testing.T) {
	if s := (Spec{}).String(); s != "" {
		t.Fatalf("zero spec renders %q", s)
	}
}

func TestWithDefaults(t *testing.T) {
	d := (Spec{}).withDefaults()
	if d.Policy != PolicyKnee || d.Mode != ModeMPS || d.Interval != 10*time.Second {
		t.Fatalf("defaults = %+v", d)
	}
	if d.Tolerance != 0.05 || d.DeltaPct != 3 || d.MinSMs != 4 || d.MaxWorkers != 4 {
		t.Fatalf("defaults = %+v", d)
	}
	if d.Cooldown != 0 {
		t.Fatalf("cooldown default should stay 0, got %v", d.Cooldown)
	}
	// Explicit values survive.
	s := Spec{Policy: PolicyFair, Interval: time.Second, MaxWorkers: 1}.withDefaults()
	if s.Policy != PolicyFair || s.Interval != time.Second || s.MaxWorkers != 1 {
		t.Fatalf("explicit values clobbered: %+v", s)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty config")
	}
	// A structurally complete config still fails spec validation.
	env := devent.NewEnv()
	col := obs.New(env)
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Env: env, Obs: col, Device: dev,
		Tenants: []Tenant{{Name: "a", App: "svc-a"}},
		Spec:    Spec{Policy: "magic"},
	})
	if err == nil || !strings.Contains(err.Error(), "policy") {
		t.Fatalf("New with bad policy: %v", err)
	}
}
