package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/harness"
)

// The alerts artifact's regression contract: for every scenario the
// rendered alert history is byte-identical at -parallel 1 and 4 and
// under -stream. The artifact goes to its own writer, so the scale
// scenario's wall-clock lines (which legitimately vary) never enter
// the comparison.

func renderAutoscaleAlerts(t *testing.T, workers int, stream bool) []byte {
	t.Helper()
	prev := harness.SetParallelism(workers)
	defer harness.SetParallelism(prev)
	var art, alerts bytes.Buffer
	opts := autoscaleTestOptions()
	opts.Stream = stream
	opts.Alerts = &alerts
	if err := Autoscale(&art, opts); err != nil {
		t.Fatalf("Autoscale with %d workers (stream=%v): %v", workers, stream, err)
	}
	return alerts.Bytes()
}

func TestAutoscaleAlertsArtifactDeterminism(t *testing.T) {
	seq := renderAutoscaleAlerts(t, 1, false)
	if len(seq) == 0 {
		t.Fatal("autoscale alerts artifact is empty")
	}
	out := string(seq)
	// Each cell registers the autoscale pack (slo-burn-page, shed-rate,
	// scale-flap) plus the SLO monitor's slo-burn rule for app "infer".
	for _, want := range []string{
		"cell=autoscaled alerts: rules=4",
		"cell=static-1 alerts: rules=4",
		"cell=static-4 alerts: rules=4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("alerts artifact is missing %q:\n%s", want, out)
		}
	}
	if par := renderAutoscaleAlerts(t, 4, false); !bytes.Equal(seq, par) {
		t.Fatalf("parallel alerts artifact differs from sequential:\n%s", firstDiff(seq, par))
	}
	if str := renderAutoscaleAlerts(t, 4, true); !bytes.Equal(seq, str) {
		t.Fatalf("streaming alerts artifact differs from snapshot:\n%s", firstDiff(seq, str))
	}
}

func renderFleetAlerts(t *testing.T, workers int, stream bool) []byte {
	t.Helper()
	prev := harness.SetParallelism(workers)
	defer harness.SetParallelism(prev)
	var art, alerts bytes.Buffer
	opts := fleetTestOptions()
	opts.Stream = stream
	opts.Alerts = &alerts
	if err := Fleet(&art, opts); err != nil {
		t.Fatalf("Fleet with %d workers (stream=%v): %v", workers, stream, err)
	}
	return alerts.Bytes()
}

func TestFleetAlertsArtifactDeterminism(t *testing.T) {
	seq := renderFleetAlerts(t, 1, false)
	if len(seq) == 0 {
		t.Fatal("fleet alerts artifact is empty")
	}
	out := string(seq)
	// Each load cell registers the fleet pack: frag-ceiling and
	// unplaced-demand.
	for _, want := range []string{
		"cell=load0.5x alerts: rules=2",
		"cell=load1.0x alerts: rules=2",
		"cell=load1.5x alerts: rules=2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("alerts artifact is missing %q:\n%s", want, out)
		}
	}
	if par := renderFleetAlerts(t, 4, false); !bytes.Equal(seq, par) {
		t.Fatalf("parallel alerts artifact differs from sequential:\n%s", firstDiff(seq, par))
	}
	if str := renderFleetAlerts(t, 4, true); !bytes.Equal(seq, str) {
		t.Fatalf("streaming alerts artifact differs from snapshot:\n%s", firstDiff(seq, str))
	}
}

func renderScaleAlerts(t *testing.T, workers int, stream bool) []byte {
	t.Helper()
	prev := harness.SetParallelism(workers)
	defer harness.SetParallelism(prev)
	var art, alerts bytes.Buffer
	opts := ScaleOptions{Tasks: 8000, Shards: 4, Seed: 3, Stream: stream, Alerts: &alerts}
	if err := Scale(&art, opts); err != nil {
		t.Fatalf("Scale with %d workers (stream=%v): %v", workers, stream, err)
	}
	return alerts.Bytes()
}

func TestScaleAlertsArtifactDeterminism(t *testing.T) {
	seq := renderScaleAlerts(t, 1, false)
	if len(seq) == 0 {
		t.Fatal("scale alerts artifact is empty")
	}
	out := string(seq)
	// Each shard registers the scale pack: completion-stall only.
	for s := 0; s < 4; s++ {
		want := "shard=" + string(rune('0'+s)) + " alerts: rules=1"
		if !strings.Contains(out, want) {
			t.Errorf("alerts artifact is missing %q:\n%s", want, out)
		}
	}
	if par := renderScaleAlerts(t, 4, false); !bytes.Equal(seq, par) {
		t.Fatalf("parallel alerts artifact differs from sequential:\n%s", firstDiff(seq, par))
	}
	if str := renderScaleAlerts(t, 4, true); !bytes.Equal(seq, str) {
		t.Fatalf("streaming alerts artifact differs from snapshot:\n%s", firstDiff(seq, str))
	}
}
