package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/obs/analyze"
)

// AttributionArtifacts runs the instrumented experiment grid once and
// writes the selected attribution artifacts: the machine-readable
// attribution JSON (consumed by tracediff) to attribW, folded
// flamegraph stacks to flameW, and the SLO alert stream to alertsW.
// Any writer may be nil to skip that artifact; slo is the burn-rate
// spec ("" disables the monitor, leaving the alert stream empty).
func AttributionArtifacts(attribW, flameW, alertsW io.Writer, completions int, slo string) error {
	collectors, err := ObservedCollectors(completions, slo)
	if err != nil {
		return err
	}
	rep := analyze.Analyze(collectors...)
	if attribW != nil {
		if err := rep.WriteJSON(attribW); err != nil {
			return err
		}
	}
	if flameW != nil {
		if err := analyze.WriteFolded(flameW, rep); err != nil {
			return err
		}
	}
	if alertsW != nil {
		if err := analyze.WriteAlerts(alertsW, collectors...); err != nil {
			return err
		}
	}
	return nil
}

// Attribution renders the human-readable latency-attribution section:
// the Table 1 burst per technique, each task's end-to-end time
// decomposed into phases and aggregated into per-scope blame profiles,
// plus the time-share vs. MPS diff that explains the paper's latency
// gap phase by phase.
func Attribution(w io.Writer, completions int) error {
	header(w, "Latency attribution — where each task's time goes, per multiplexing technique")
	_, collectors, err := core.RunTable1Observed(true, "")
	if err != nil {
		return err
	}
	rep := analyze.Analyze(collectors...)
	fmt.Fprintf(w, "\nblame profiles (mean ms per task per phase; %d tasks total):\n\n", len(rep.Tasks))
	if err := rep.WriteText(w); err != nil {
		return err
	}

	// The paper's Fig. 4/5 story, restated as a trace diff: the
	// time-share → MPS latency win is a kernel-queue-delay win.
	byScope := func(scope string) *analyze.Report {
		sub := &analyze.Report{}
		for _, t := range rep.Tasks {
			if t.Scope == scope {
				sub.Tasks = append(sub.Tasks, t)
			}
		}
		return sub
	}
	d := analyze.Diff(
		byScope("table1/"+string(core.ModeTimeshare)),
		byScope("table1/"+string(core.ModeMPS)),
		"table1/timeshare", "table1/mps")
	fmt.Fprintln(w)
	return d.WriteText(w)
}
