package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/repart"
)

// checkNoLeakedSpans asserts the span stream drained: the only spans
// legitimately open when a simulation ends are the daemon worker loops.
func checkNoLeakedSpans(t *testing.T, collectors ...*obs.Collector) {
	t.Helper()
	for _, c := range collectors {
		for _, s := range c.CheckClosed() {
			if s.Cat == "htex" && s.Name == "worker" {
				continue
			}
			t.Errorf("scope %s: leaked open span %s/%s on track %s", c.Scope(), s.Cat, s.Name, s.Track)
		}
	}
}

// TestAttributionInvariant locks the engine's core contract on the
// real workloads: for every task in the Table 1 bursts and in the
// phase-shift scenario, the phase vector sums EXACTLY to the task's
// end-to-end duration, and no time lands in the "other" bucket.
func TestAttributionInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented bursts in -short mode")
	}
	_, collectors, err := core.RunTable1Observed(true, "")
	if err != nil {
		t.Fatal(err)
	}
	checkNoLeakedSpans(t, collectors...)

	spec, err := repart.ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	ps, err := core.RunPhaseShift(core.PhaseShiftConfig{Observe: true, Repart: &spec})
	if err != nil {
		t.Fatal(err)
	}
	ps.Obs.SetScope("phaseshift/controller")
	collectors = append(collectors, ps.Obs)

	rep := analyze.Analyze(collectors...)
	if len(rep.Tasks) == 0 {
		t.Fatal("no tasks attributed")
	}
	for i := range rep.Tasks {
		ta := &rep.Tasks[i]
		if got, want := ta.Phases.Total(), ta.Duration(); got != want {
			t.Errorf("%s task %d: phase sum %v != duration %v (off by %v)",
				ta.Scope, ta.Task, got, want, want-got)
		}
		if ta.Phases[analyze.PhaseOther] != 0 {
			t.Errorf("%s task %d: other = %v, want 0",
				ta.Scope, ta.Task, ta.Phases[analyze.PhaseOther])
		}
	}
	// The burst's dominant phases must be populated: compute everywhere,
	// kernel_queue under time-sharing.
	var compute, kq int
	for i := range rep.Tasks {
		if rep.Tasks[i].Phases[analyze.PhaseCompute] > 0 {
			compute++
		}
		if strings.HasPrefix(rep.Tasks[i].Scope, "table1/timeshare") &&
			rep.Tasks[i].Phases[analyze.PhaseKernelQueue] > 0 {
			kq++
		}
	}
	if compute == 0 {
		t.Error("no task has compute time")
	}
	if kq == 0 {
		t.Error("no time-share task has kernel-queue time")
	}
}

// TestObservedCollectorsDrainCleanly asserts the open-span leak check
// over the whole instrumented grid: when a simulation ends, every span
// except the daemon worker loops must have been closed.
func TestObservedCollectorsDrainCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented grid in -short mode")
	}
	collectors, err := ObservedCollectors(2, "llama-complete:10s:0.9")
	if err != nil {
		t.Fatal(err)
	}
	checkNoLeakedSpans(t, collectors...)
}

// TestTraceDiffKernelQueueStory locks the paper's Fig. 4/5 explanation
// in attribution terms: the latency gap between 4-process time-sharing
// and 25%-capped MPS is dominated by kernel dispatch delay.
func TestTraceDiffKernelQueueStory(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented bursts in -short mode")
	}
	_, collectors, err := core.RunTable1Observed(true, "")
	if err != nil {
		t.Fatal(err)
	}
	rep := analyze.Analyze(collectors...)
	byScope := func(scope string) *analyze.Report {
		sub := &analyze.Report{}
		for _, ta := range rep.Tasks {
			if ta.Scope == scope {
				sub.Tasks = append(sub.Tasks, ta)
			}
		}
		if len(sub.Tasks) == 0 {
			t.Fatalf("no tasks in scope %s", scope)
		}
		return sub
	}
	d := analyze.Diff(byScope("table1/timeshare"), byScope("table1/mps"), "timeshare", "mps")
	if d.Dominant != "kernel_queue" {
		t.Errorf("dominant phase = %q, want kernel_queue (diff: %+v)", d.Dominant, d)
	}
	if d.DeltaNS >= 0 {
		t.Errorf("MPS should be faster than time-share, delta = %d ns", d.DeltaNS)
	}
}

// TestAttributionParallelDeterminism extends the harness determinism
// contract to every new artifact: attribution JSON, folded stacks, the
// SLO alert stream, and the tracediff JSON must be byte-identical at
// any worker count.
func TestAttributionParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented grid in -short mode")
	}
	const slo = "llama-complete:10s:0.9"
	render := func(workers int) (attrib, flame, alerts, diff []byte) {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		var aw, fw, lw bytes.Buffer
		if err := AttributionArtifacts(&aw, &fw, &lw, 2, slo); err != nil {
			t.Fatalf("AttributionArtifacts with %d workers: %v", workers, err)
		}
		rep, err := analyze.ReadReport(bytes.NewReader(aw.Bytes()))
		if err != nil {
			t.Fatalf("re-reading attribution JSON: %v", err)
		}
		byScope := func(scope string) *analyze.Report {
			sub := &analyze.Report{}
			for _, ta := range rep.Tasks {
				if ta.Scope == scope {
					sub.Tasks = append(sub.Tasks, ta)
				}
			}
			return sub
		}
		var dw bytes.Buffer
		d := analyze.Diff(byScope("table1/timeshare"), byScope("table1/mps"), "timeshare", "mps")
		if err := d.WriteJSON(&dw); err != nil {
			t.Fatal(err)
		}
		return aw.Bytes(), fw.Bytes(), lw.Bytes(), dw.Bytes()
	}
	seqA, seqF, seqL, seqD := render(1)
	if len(seqA) == 0 || len(seqF) == 0 {
		t.Fatal("sequential attribution artifacts are empty")
	}
	parA, parF, parL, parD := render(4)
	if !bytes.Equal(seqA, parA) {
		t.Fatalf("attribution JSON differs:\n%s", firstDiff(seqA, parA))
	}
	if !bytes.Equal(seqF, parF) {
		t.Fatalf("folded stacks differ:\n%s", firstDiff(seqF, parF))
	}
	if !bytes.Equal(seqL, parL) {
		t.Fatalf("alert stream differs:\n%s", firstDiff(seqL, parL))
	}
	if !bytes.Equal(seqD, parD) {
		t.Fatalf("tracediff JSON differs:\n%s", firstDiff(seqD, parD))
	}
}

// TestAttributionSection smoke-tests the human-readable artifact: it
// must render blame profiles and the dominant-phase callout.
func TestAttributionSection(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented bursts in -short mode")
	}
	var buf bytes.Buffer
	if err := Attribution(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Latency attribution",
		"kernel_queue",
		"table1/mps",
		"<- dominant",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("attrib section missing %q", want)
		}
	}
}
