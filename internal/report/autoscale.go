package report

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// AutoscaleOptions parameterizes the autoscaling artifact. Zero values
// take the core.AutoscaleConfig defaults (6 GPUs, two 1h diurnal
// cycles peaking at 4 req/s with a 3× burst).
type AutoscaleOptions struct {
	GPUs    int
	Horizon time.Duration
	Seed    int64
	// Stream attaches a streaming span sink to every cell so spans
	// flush as they end instead of being retained. The artifact is
	// byte-identical either way: every reported quantity is virtual.
	Stream bool
	// WrapSink, when set with Stream, wraps each cell's span sink —
	// the live server tees its /spans tail in here. Ignored without
	// Stream.
	WrapSink func(cell string, base obs.SpanSink) obs.SpanSink
	// Telemetry attaches the live observability plane per cell (the
	// cell label plays the fleet artifact's load role).
	Telemetry *FleetTelemetry
	// Alerts, when set, renders each cell's end-of-run alert-rule
	// history (engine state + resolved incidents, grid order) to this
	// writer. Purely virtual: byte-identical at any -parallel level
	// and under -stream.
	Alerts io.Writer
}

// autoscaleCells is the artifact's grid: the hybrid autoscaler against
// a trough-static baseline (1 block) and a peak-static baseline (the
// whole pool). staticBlocks < 0 marks the autoscaled cell.
type autoscaleCell struct {
	label        string
	staticBlocks int
}

func autoscaleGrid(gpus int) []autoscaleCell {
	return []autoscaleCell{
		{"autoscaled", 0},
		{"static-1", 1},
		{fmt.Sprintf("static-%d", gpus), gpus},
	}
}

// Autoscale runs the SLO-driven autoscaling experiment — the same
// diurnal, bursty traffic against the hybrid autoscaler and two static
// provisioning baselines — and writes the artifact: per cell the
// config echo, demand/outcome counts, served-latency percentiles, and
// the GPU-seconds economics; then a verdict comparing the autoscaler
// to each baseline on its axis. Every line is virtual —
// byte-identical at any -parallel level and under -stream.
func Autoscale(w io.Writer, opts AutoscaleOptions) error {
	bw := bufio.NewWriter(w)
	header(bw, "SLO-driven autoscaling — hybrid block scaling + admission control vs static provisioning")
	base := core.AutoscaleConfig{GPUs: opts.GPUs, Seed: opts.Seed}.WithDefaults()
	if opts.Horizon > 0 {
		base.Traffic.Horizon = opts.Horizon
	}
	grid := autoscaleGrid(base.GPUs)
	type cell struct {
		cfg core.AutoscaleConfig
		res *core.AutoscaleResult
	}
	cells, err := harness.Map(len(grid), func(i int) (cell, error) {
		cfg := base
		cfg.StaticBlocks = grid[i].staticBlocks
		label := grid[i].label
		if t := opts.Telemetry; t != nil && t.TSDB != nil {
			tc := *t.TSDB
			cfg.TSDB = &tc
			if t.OnCellDB != nil {
				cfg.OnDB = func(db *tsdb.DB) { t.OnCellDB(label, db) }
			}
		}
		if opts.Stream {
			sink := obs.SpanSink(discardSink{})
			if opts.WrapSink != nil {
				sink = opts.WrapSink(label, sink)
			}
			cfg.OnCollector = func(c *obs.Collector) { c.SetSink(sink) }
		}
		res, err := core.RunAutoscale(cfg)
		if err != nil {
			return cell{}, fmt.Errorf("autoscale %s: %w", label, err)
		}
		return cell{cfg, res}, nil
	})
	if err != nil {
		return err
	}
	for i, c := range cells {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		writeAutoscaleCell(bw, grid[i].label, c.cfg, c.res)
	}

	auto, trough, peak := cells[0].res, cells[1].res, cells[2].res
	fmt.Fprintln(bw)
	saving := 0.0
	if peak.GPUSeconds > 0 {
		saving = 1 - auto.GPUSeconds/peak.GPUSeconds
	}
	fmt.Fprintf(bw, "virtual: verdict cost        auto=%.0fgpu·s peak-static=%.0fgpu·s saving=%.1f%%\n",
		auto.GPUSeconds, peak.GPUSeconds, 100*saving)
	fmt.Fprintf(bw, "virtual: verdict attainment  auto=%.4f trough-static=%.4f peak-static=%.4f\n",
		auto.Attainment, trough.Attainment, peak.Attainment)
	fmt.Fprintf(bw, "virtual: verdict cold-starts auto=%d amortized=%.1f tasks/start (peak-static %.1f)\n",
		auto.ColdStarts, auto.TasksPerColdStart, peak.TasksPerColdStart)
	if opts.Alerts != nil {
		for i, c := range cells {
			if err := tsdb.WriteAlertHistory(opts.Alerts, "cell="+grid[i].label+" ", c.res.TSDB); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeAutoscaleCell renders one cell. Everything here is virtual and
// deterministic in (config, seed).
func writeAutoscaleCell(w io.Writer, label string, cfg core.AutoscaleConfig, res *core.AutoscaleResult) {
	mode := fmt.Sprintf("static blocks=%d", cfg.StaticBlocks)
	if res.Autoscaled {
		mode = fmt.Sprintf("autoscaled blocks=%d..%d", cfg.Policy.MinBlocks, res.Blocks)
	}
	fmt.Fprintf(w, "config: cell=%s %s gpus=%d grant=%s init=%s service=%s slo=%s@%.2f/%s seed=%d\n",
		label, mode, cfg.GPUs, cfg.GrantDelay, cfg.WorkerInit, cfg.ServiceTime,
		cfg.SLOLatency, cfg.SLOTarget, cfg.SLOWindow, cfg.Seed)
	tc := cfg.Traffic
	fmt.Fprintf(w, "config: traffic users=%d peak=%.2f/s period=%s trough=%.2f cutoff=%.2f/s bursts=%d horizon=%s\n",
		tc.Users, float64(tc.Users)*tc.PerUserRate, tc.Period, tc.TroughFrac, tc.Cutoff, len(tc.Bursts), tc.Horizon)
	fmt.Fprintf(w, "virtual: arrivals=%d completed=%d good=%d shed=%d failed=%d attainment=%.4f shed_rate=%.4f\n",
		res.Arrivals, res.Completed, res.Good, res.Shed, res.Failed, res.Attainment, res.ShedRate)
	fmt.Fprintf(w, "virtual: latency p50=%s p95=%s p99=%s max=%s (served only)\n",
		res.Latencies.Percentile(50), res.Latencies.Percentile(95),
		res.Latencies.Percentile(99), res.Latencies.Max())
	fmt.Fprintf(w, "virtual: economics gpu_seconds=%.0f per_good=%.2f cold_starts=%d tasks_per_cold_start=%.1f\n",
		res.GPUSeconds, res.GPUSecondsPerGood, res.ColdStarts, res.TasksPerColdStart)
	fmt.Fprintf(w, "virtual: scaling out=%d in=%d peak_blocks=%d final_blocks=%d makespan=%s events=%d\n",
		res.ScaleOuts, res.ScaleIns, res.PeakBlocks, res.FinalBlocks, res.Makespan, res.Events)
}
