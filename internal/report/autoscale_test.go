package report

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs/tsdb"
)

// autoscaleTestOptions shrinks the grid to a fast-but-real cell: the
// 40-minute horizon still covers the climb to peak, the 3× burst, and
// the descent into the night cutoff.
func autoscaleTestOptions() AutoscaleOptions {
	return AutoscaleOptions{GPUs: 4, Horizon: 40 * time.Minute, Seed: 3}
}

// TestAutoscaleDeterminism is the artifact's regression contract:
// byte-identical at -parallel 1 and 4, across repeated parallel runs,
// and under -stream.
func TestAutoscaleDeterminism(t *testing.T) {
	render := func(workers int, stream bool) []byte {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		var b bytes.Buffer
		opts := autoscaleTestOptions()
		opts.Stream = stream
		if err := Autoscale(&b, opts); err != nil {
			t.Fatalf("Autoscale with %d workers (stream=%v): %v", workers, stream, err)
		}
		return b.Bytes()
	}
	seq := render(1, false)
	if len(seq) == 0 {
		t.Fatal("sequential autoscale artifact is empty")
	}
	par := render(4, false)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel output differs from sequential:\n%s", firstDiff(seq, par))
	}
	par2 := render(4, false)
	if !bytes.Equal(par, par2) {
		t.Fatalf("repeated parallel runs differ:\n%s", firstDiff(par, par2))
	}
	str := render(4, true)
	if !bytes.Equal(seq, str) {
		t.Fatalf("streaming output differs from snapshot:\n%s", firstDiff(seq, str))
	}
}

// TestAutoscaleArtifactShape pins the line vocabulary: a config echo
// and outcome block per cell, and the three-verdict footer.
func TestAutoscaleArtifactShape(t *testing.T) {
	var b bytes.Buffer
	if err := Autoscale(&b, autoscaleTestOptions()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"SLO-driven autoscaling",
		"config: cell=autoscaled", "config: cell=static-1", "config: cell=static-4",
		"config: traffic users=",
		"virtual: arrivals=", "virtual: latency p50=",
		"virtual: economics gpu_seconds=", "virtual: scaling out=",
		"virtual: verdict cost", "virtual: verdict attainment", "virtual: verdict cold-starts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("artifact is missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wall:") {
		t.Error("autoscale artifact must stay purely virtual (no wall lines)")
	}
}

// TestAutoscaleVerdictHolds locks the experiment's conclusion into the
// artifact: the autoscaled cell undercuts peak-static GPU-seconds and
// out-attains trough-static on the same traffic.
func TestAutoscaleVerdictHolds(t *testing.T) {
	var b bytes.Buffer
	if err := Autoscale(&b, autoscaleTestOptions()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	verdict := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "virtual: verdict cost") {
			verdict = line
		}
	}
	if verdict == "" {
		t.Fatalf("no cost verdict in artifact:\n%s", out)
	}
	var auto, peak float64
	var saving float64
	if _, err := fmt.Sscanf(verdict, "virtual: verdict cost        auto=%fgpu·s peak-static=%fgpu·s saving=%f%%",
		&auto, &peak, &saving); err != nil {
		t.Fatalf("unparseable verdict %q: %v", verdict, err)
	}
	if auto >= peak || saving <= 0 {
		t.Errorf("autoscaler did not undercut peak-static: %s", verdict)
	}
}

// TestAutoscaleTelemetryHooks checks the live-plane wiring: each cell
// gets its own labeled series store.
func TestAutoscaleTelemetryHooks(t *testing.T) {
	var b bytes.Buffer
	opts := autoscaleTestOptions()
	seen := make(map[string]*tsdb.DB)
	opts.Telemetry = &FleetTelemetry{
		TSDB:     &tsdb.Config{},
		OnCellDB: func(cell string, db *tsdb.DB) { seen[cell] = db },
	}
	if err := Autoscale(&b, opts); err != nil {
		t.Fatal(err)
	}
	for _, c := range autoscaleGrid(4) {
		db := seen[c.label]
		if db == nil {
			t.Fatalf("cell %s never attached a series store (got %v)", c.label, seen)
		}
		if len(db.List()) == 0 {
			t.Errorf("cell %s store scraped no series", c.label)
		}
	}
}
