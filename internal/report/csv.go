package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/harness"
)

// WriteFigureCSVs regenerates the quantitative figure series and
// writes them as CSV files (fig2.csv, fig4.csv, fig5.csv) into dir,
// ready for external plotting. Runs are deterministic, so the files
// match the text reports exactly.
func WriteFigureCSVs(dir string, completions int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFig2CSV(filepath.Join(dir, "fig2.csv")); err != nil {
		return err
	}
	return writeFig45CSV(
		filepath.Join(dir, "fig4.csv"),
		filepath.Join(dir, "fig5.csv"),
		completions,
	)
}

func writeFig2CSV(path string) error {
	res, err := core.Fig2Sweep([]int{5, 10, 15, 19, 25, 37, 50, 75, 100})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "model,mps_percent,sms,latency_s"); err != nil {
		return err
	}
	for _, p := range res.Points {
		if _, err := fmt.Fprintf(f, "%s,%d,%d,%.6f\n", p.Model, p.Percent, p.SMs, p.Latency.Seconds()); err != nil {
			return err
		}
	}
	// Sorted keys, not map order, so the file is byte-reproducible.
	models := make([]string, 0, len(res.CPUBaselines))
	for model := range res.CPUBaselines {
		models = append(models, model)
	}
	sort.Strings(models)
	for _, model := range models {
		if _, err := fmt.Fprintf(f, "%s-cpu,0,0,%.6f\n", model, res.CPUBaselines[model].Seconds()); err != nil {
			return err
		}
	}
	return nil
}

func writeFig45CSV(fig4Path, fig5Path string, completions int) error {
	if completions <= 0 {
		completions = 100
	}
	f4, err := os.Create(fig4Path)
	if err != nil {
		return err
	}
	defer f4.Close()
	f5, err := os.Create(fig5Path)
	if err != nil {
		return err
	}
	defer f5.Close()
	if err := writeHeader(f4, "mode,processes,makespan_s,throughput_per_s,utilization"); err != nil {
		return err
	}
	if err := writeHeader(f5, "mode,processes,mean_latency_s,p95_latency_s"); err != nil {
		return err
	}
	modes := []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG}
	const procsPerMode = 4
	cells, err := harness.Map(len(modes)*procsPerMode, func(i int) (*core.MultiplexResult, error) {
		return core.RunMultiplex(core.MultiplexConfig{
			Mode: modes[i/procsPerMode], Processes: i%procsPerMode + 1, Completions: completions,
		})
	})
	if err != nil {
		return err
	}
	for i, r := range cells {
		mode, n := modes[i/procsPerMode], i%procsPerMode+1
		if _, err := fmt.Fprintf(f4, "%s,%d,%.3f,%.5f,%.4f\n",
			mode, n, r.Makespan.Seconds(), r.Throughput, r.Utilization); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(f5, "%s,%d,%.4f,%.4f\n",
			mode, n, r.MeanLatency().Seconds(), r.Latencies.Percentile(95).Seconds()); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, h string) error {
	_, err := fmt.Fprintln(w, h)
	return err
}
