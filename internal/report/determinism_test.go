package report

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/harness"
)

// TestAllParallelMatchesSequential is the determinism contract of the
// parallel harness: report.All rendered with any worker count must be
// byte-identical to the sequential rendering, and repeated parallel
// runs must be byte-identical to each other. Every Env is logically
// single-threaded; parallelism is only across Envs, so nothing about
// scheduling order can leak into the output.
func TestAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full report rendering in -short mode")
	}
	const completions = 8
	render := func(workers int) []byte {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		var b bytes.Buffer
		if err := All(&b, completions); err != nil {
			t.Fatalf("All with %d workers: %v", workers, err)
		}
		return b.Bytes()
	}
	seq := render(1)
	if len(seq) == 0 {
		t.Fatal("sequential report is empty")
	}
	par := render(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel output differs from sequential (%d vs %d bytes):\n%s",
			len(par), len(seq), firstDiff(seq, par))
	}
	par2 := render(4)
	if !bytes.Equal(par, par2) {
		t.Fatalf("repeated parallel runs differ:\n%s", firstDiff(par, par2))
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+80, i+80
			if hiA > len(a) {
				hiA = len(a)
			}
			if hiB > len(b) {
				hiB = len(b)
			}
			return fmt.Sprintf("first divergence at byte %d:\n<<<%s\n>>>%s", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return "outputs are prefixes of each other"
}
