package report

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
)

// Ablations prints the design-choice studies DESIGN.md calls out:
// host-gap (why time-sharing helps at all), memory-traffic fraction
// (the MPS/MIG crossover driver), batching vs multiplexing, and the
// vGPU quantum.
func Ablations(w io.Writer) error {
	header(w, "Ablation A — host-side gap vs time-sharing benefit")
	gapRows, err := core.AblationHostGap([]time.Duration{0, 20 * time.Millisecond, 45 * time.Millisecond, 90 * time.Millisecond}, 24)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "host gap (ms)\tsingle (s)\ttimeshare-4 (s)\timprovement")
	for _, r := range gapRows {
		fmt.Fprintf(tw, "%.0f\t%s\t%s\t%.0f%%\n",
			float64(r.HostGap.Milliseconds()), sec(r.SingleMakespan), sec(r.Timeshare4Makespan), r.Improvement*100)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "with no host gap the GPU is already saturated and time-sharing cannot help;")
	fmt.Fprintln(w, "the calibrated 45 ms gap yields the ~20% Fig-4 time-sharing benefit.")

	header(w, "Ablation B — memory-traffic fraction vs the MPS/MIG gap (3 processes)")
	memRows, err := core.AblationMemFraction([]float64{0.01, 0.2, 0.4, 0.6}, 18)
	if err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "mem fraction\tMPS-3 (s)\tMIG-3 (s)\tMIG penalty")
	for _, r := range memRows {
		fmt.Fprintf(tw, "%.2f\t%s\t%s\t%.2fx\n", r.MemFraction, sec(r.MPS3), sec(r.MIG3), r.MIGPenalty)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "pure-compute tenants make MIG-2g equal to MPS; weight-streaming traffic exposes")
	fmt.Fprintln(w, "MIG's hard 2/8 bandwidth slice against MPS's soft 1/3 share — §5.2's crossover.")

	header(w, "Ablation C — batching vs multiplexing")
	bRows, err := core.AblationBatchVsMultiplex(40)
	if err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tthroughput (req/s)\tmean latency (s)")
	for _, r := range bRows {
		fmt.Fprintf(tw, "%s\t%.3f\t%s\n", r.Strategy, r.Throughput, sec(r.MeanLat))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "a single tenant should batch; multiplexing is for the multi-tenant case the")
	fmt.Fprintln(w, "paper targets, where requests belong to different functions/users.")

	header(w, "Ablation D — vGPU quantum")
	qRows, err := core.AblationVGPUQuantum([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond}, 16)
	if err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "quantum\tmean latency (s)")
	for _, r := range qRows {
		fmt.Fprintf(tw, "%v\t%s\n", r.Quantum, sec(r.MeanLat))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "VM-level slicing stays at ~4x single-stream latency regardless of quantum:")
	fmt.Fprintln(w, "no spatial parallelism is extracted (Table 1's vGPU row).")
	return nil
}

// MixedTenancy prints the latency-sensitive-co-tenant study: ResNet-50
// next to a LLaMa-2 service under each technique.
func MixedTenancy(w io.Writer) error {
	header(w, "Mixed tenancy — real-time ResNet-50 next to a LLaMa-2 service")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\tresnet solo\tresnet mean\tresnet p99\tmeets 100ms\tLLM mean (s)")
	modes := []core.Mode{core.ModeTimeshare, core.ModeMPSDefault, core.ModeMPS, core.ModeMIG, core.ModeVGPU}
	rows, err := harness.Map(len(modes), func(i int) (*core.MixedTenancyResult, error) {
		return core.RunMixedTenancy(modes[i])
	})
	if err != nil {
		return err
	}
	for i, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1fms\t%.1fms\t%.1fms\t%v\t%s\n",
			modes[i],
			r.ResNetSolo.Seconds()*1e3,
			r.ResNetMean.Seconds()*1e3,
			r.ResNetP99.Seconds()*1e3,
			r.MeetsRealTime,
			sec(r.LLMMean))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "under default time-sharing every camera frame queues behind ~180 ms decode")
	fmt.Fprintln(w, "kernels (§6's real-time budget is blown); MPS percentages and MIG keep the")
	fmt.Fprintln(w, "CNN near its solo latency while the LLM keeps its own partition busy.")
	return nil
}

// OpenLoop prints the §5.2 multi-client serving scenario as an open
// system: Poisson arrivals at a load between time-sharing's capacity
// and MPS's, where stability itself separates the techniques.
func OpenLoop(w io.Writer) error {
	header(w, "Open-loop serving — Poisson chatbot arrivals at 0.4 req/s, 4 instances")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\tp50 (s)\tp99 (s)\tsustained (req/s)\tstable")
	modes := []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG}
	rows, err := harness.Map(len(modes), func(i int) (*core.OpenLoopResult, error) {
		return core.RunOpenLoop(core.OpenLoopConfig{Mode: modes[i], Processes: 4, ArrivalRate: 0.4, Requests: 60})
	})
	if err != nil {
		return err
	}
	for i, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.3f\t%v\n",
			modes[i],
			r.Latencies.Percentile(50).Seconds(),
			r.Latencies.Percentile(99).Seconds(),
			r.ServiceCapacity, r.Stable)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "0.4 req/s sits between time-sharing's ~0.27 req/s capacity and MPS's ~0.59:")
	fmt.Fprintln(w, "spatial partitioning is the difference between bounded latency and a backlog")
	fmt.Fprintln(w, "that grows without limit.")
	return nil
}
