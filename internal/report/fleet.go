package report

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// FleetOptions parameterizes the fleet-scale placement artifact. Zero
// values take the core.FleetConfig defaults (128 GPUs, 56 apps, 10 min
// horizon).
type FleetOptions struct {
	GPUs80, GPUs40 int
	Apps           int
	Duration       time.Duration
	ArrivalRate    float64
	Seed           int64
	// Stream attaches a streaming span sink to every cell so spans
	// flush as they end instead of being retained. The artifact is
	// byte-identical either way: every reported quantity is virtual.
	Stream bool
	// WrapSink, when set with Stream, wraps each cell's span sink —
	// the live server tees its /spans tail in here. Ignored without
	// Stream (snapshot collection has no sink to tee).
	WrapSink func(load string, base obs.SpanSink) obs.SpanSink
	// Telemetry attaches the live observability plane per load cell.
	Telemetry *FleetTelemetry
	// Alerts, when set, renders each cell's end-of-run alert-rule
	// history (engine state + resolved incidents, grid order) to this
	// writer, forcing a per-cell tsdb store on if Telemetry hasn't
	// already. Purely virtual: byte-identical at any -parallel level
	// and under -stream.
	Alerts io.Writer
}

// FleetTelemetry carries the live-plane hooks for the fleet artifact:
// one virtual-time series store per load cell.
type FleetTelemetry struct {
	TSDB     *tsdb.Config
	OnCellDB func(load string, db *tsdb.DB)
}

// fleetLoads are the offered-load multipliers of the artifact's grid,
// applied to the configured (or default) arrival rate.
var fleetLoads = []float64{0.5, 1.0, 1.5}

// fleetLoadLabel names one grid cell, e.g. "load1.5x".
func fleetLoadLabel(m float64) string { return fmt.Sprintf("load%.1fx", m) }

// Fleet runs the fleet-scale placement scenario across the offered-load
// grid and writes the artifact: per cell, the config echo, admission
// and per-class SLO attainment, the fragmentation timeline, and the
// rebalance ledger. Every line is virtual — byte-identical at any
// -parallel level and under -stream.
func Fleet(w io.Writer, opts FleetOptions) error {
	bw := bufio.NewWriter(w)
	header(bw, "Fleet-scale placement — fragmentation-aware MIG+MPS packing")
	base := core.FleetConfig{
		GPUs80: opts.GPUs80, GPUs40: opts.GPUs40, Apps: opts.Apps,
		Duration: opts.Duration, ArrivalRate: opts.ArrivalRate, Seed: opts.Seed,
	}.WithDefaults()
	type cell struct {
		cfg core.FleetConfig
		res *core.FleetResult
	}
	cells, err := harness.Map(len(fleetLoads), func(i int) (cell, error) {
		cfg := base
		cfg.ArrivalRate = base.ArrivalRate * fleetLoads[i]
		label := fleetLoadLabel(fleetLoads[i])
		if t := opts.Telemetry; t != nil && t.TSDB != nil {
			tc := *t.TSDB
			cfg.TSDB = &tc
			if t.OnCellDB != nil {
				cfg.OnDB = func(db *tsdb.DB) { t.OnCellDB(label, db) }
			}
		}
		if opts.Alerts != nil && cfg.TSDB == nil {
			cfg.TSDB = &tsdb.Config{}
		}
		if opts.Stream {
			sink := obs.SpanSink(discardSink{})
			if opts.WrapSink != nil {
				sink = opts.WrapSink(label, sink)
			}
			cfg.OnCollector = func(c *obs.Collector) { c.SetSink(sink) }
		}
		res, err := core.RunFleet(cfg)
		if err != nil {
			return cell{}, fmt.Errorf("fleet %s: %w", label, err)
		}
		return cell{cfg, res}, nil
	})
	if err != nil {
		return err
	}
	for i, c := range cells {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		writeFleetCell(bw, fleetLoads[i], c.cfg, c.res)
	}
	if opts.Alerts != nil {
		for i, c := range cells {
			if err := tsdb.WriteAlertHistory(opts.Alerts, "cell="+fleetLoadLabel(fleetLoads[i])+" ", c.res.TSDB); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeFleetCell renders one load cell. Everything here is virtual
// and deterministic in (config, seed).
func writeFleetCell(w io.Writer, load float64, cfg core.FleetConfig, res *core.FleetResult) {
	fmt.Fprintf(w, "config: load=%.1fx gpus=%d (%dx80GB+%dx40GB) apps=%d arrival=%.2f/s lifetime=%s horizon=%s rebalance=%s seed=%d\n",
		load, res.GPUs, cfg.GPUs80, cfg.GPUs40, res.Apps,
		cfg.ArrivalRate, cfg.MeanLifetime, cfg.Duration, cfg.RebalanceEvery, cfg.Seed)
	fmt.Fprintf(w, "virtual: arrivals=%d placed=%d rejected=%d attainment=%.4f\n",
		res.Arrivals, res.Placed, res.Rejected, res.Attainment)
	for _, cs := range res.Classes {
		att := 1.0
		if cs.Arrivals > 0 {
			att = float64(cs.Placed) / float64(cs.Arrivals)
		}
		fmt.Fprintf(w, "virtual: class %-8s arrivals=%-5d placed=%-5d attainment=%.4f\n",
			cs.Class, cs.Arrivals, cs.Placed, att)
	}
	// Fragmentation-over-time, downsampled to at most ten points plus
	// the final sample so the artifact stays readable at any horizon.
	if n := len(res.FragSeries); n > 0 {
		step := (n + 9) / 10
		for i := 0; i < n; i += step {
			writeFleetFragPoint(w, res.FragSeries[i])
		}
		if (n-1)%step != 0 {
			writeFleetFragPoint(w, res.FragSeries[n-1])
		}
	}
	fmt.Fprintf(w, "virtual: rebalances=%d applied=%d moved=%d max_gap=%.4f scratch_infeasible=%d\n",
		res.Rebalances, res.RebalancesApplied, res.Moved, res.MaxGap, res.ScratchInfeasible)
	fmt.Fprintf(w, "virtual: peak_tenants=%d final_tenants=%d final_frag=%.4f evicted=%d makespan=%s events=%d\n",
		res.PeakTenants, res.FinalTenants, res.FinalFrag, res.Evicted, res.Makespan, res.Events)
}

func writeFleetFragPoint(w io.Writer, p core.FleetFragPoint) {
	fmt.Fprintf(w, "virtual: frag t=%-8s frag=%.4f tenants=%-4d mig=%-3d mps=%-3d empty=%d\n",
		p.T, p.Frag, p.Tenants, p.MIG, p.MPS, p.Empty)
}
