package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs/tsdb"
)

// fleetTestOptions is a small-but-real grid cell basis: enough GPUs
// and apps to exercise MIG shares, whole-GPU MPS fallback, rejections,
// and rebalancing, while staying fast enough to render three times.
func fleetTestOptions() FleetOptions {
	return FleetOptions{
		GPUs80: 10, GPUs40: 10, Apps: 16,
		Duration: 2 * time.Minute, Seed: 3,
	}
}

// TestFleetDeterminism is the fleet artifact's regression contract:
// the rendering is byte-identical at -parallel 1 and 4, across
// repeated parallel runs, and under -stream (every reported line is
// virtual, so neither scheduling nor collection mode may leak in).
func TestFleetDeterminism(t *testing.T) {
	render := func(workers int, stream bool) []byte {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		var b bytes.Buffer
		opts := fleetTestOptions()
		opts.Stream = stream
		if err := Fleet(&b, opts); err != nil {
			t.Fatalf("Fleet with %d workers (stream=%v): %v", workers, stream, err)
		}
		return b.Bytes()
	}
	seq := render(1, false)
	if len(seq) == 0 {
		t.Fatal("sequential fleet artifact is empty")
	}
	par := render(4, false)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel output differs from sequential:\n%s", firstDiff(seq, par))
	}
	par2 := render(4, false)
	if !bytes.Equal(par, par2) {
		t.Fatalf("repeated parallel runs differ:\n%s", firstDiff(par, par2))
	}
	str := render(4, true)
	if !bytes.Equal(seq, str) {
		t.Fatalf("streaming output differs from snapshot:\n%s", firstDiff(seq, str))
	}
}

// TestFleetArtifactShape pins the artifact's line vocabulary: one
// config echo per load cell, admission and class lines, at least two
// fragmentation samples, and the rebalance ledger.
func TestFleetArtifactShape(t *testing.T) {
	var b bytes.Buffer
	if err := Fleet(&b, fleetTestOptions()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Fleet-scale placement",
		"config: load=0.5x", "config: load=1.0x", "config: load=1.5x",
		"virtual: arrivals=", "virtual: class small",
		"virtual: class oversize", "virtual: frag t=",
		"virtual: rebalances=", "virtual: peak_tenants=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("artifact is missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "virtual: frag t="); n < 6 {
		t.Errorf("only %d fragmentation samples across 3 cells", n)
	}
	if strings.Contains(out, "wall:") {
		t.Error("fleet artifact must stay purely virtual (no wall lines)")
	}
}

// TestFleetTelemetryHooks checks the live-plane wiring: each load
// cell gets its own series store, labeled by cell.
func TestFleetTelemetryHooks(t *testing.T) {
	var b bytes.Buffer
	opts := fleetTestOptions()
	seen := make(map[string]*tsdb.DB)
	opts.Telemetry = &FleetTelemetry{
		TSDB:     &tsdb.Config{},
		OnCellDB: func(load string, db *tsdb.DB) { seen[load] = db },
	}
	if err := Fleet(&b, opts); err != nil {
		t.Fatal(err)
	}
	for _, m := range fleetLoads {
		label := fleetLoadLabel(m)
		db := seen[label]
		if db == nil {
			t.Fatalf("cell %s never attached a series store (got %v)", label, seen)
		}
		if len(db.List()) == 0 {
			t.Errorf("cell %s store scraped no series", label)
		}
	}
}
