package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
)

// ObservedCollectors reruns the Fig. 4/5 multiplexing grid and the
// Table 1 bursts with deep instrumentation enabled and returns every
// run's collector in a fixed order (fig45 grid cells first, then the
// Table 1 rows). The grid cells are independent simulations run
// through the harness, which preserves input order regardless of
// worker count — so the list, and anything exported from it, is
// deterministic at any parallelism level. A non-empty slo spec (see
// core.Options.SLO) attaches the burn-rate monitor to every run.
func ObservedCollectors(completions int, slo string) ([]*obs.Collector, error) {
	if completions <= 0 {
		completions = 100
	}
	modes := []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG}
	const procsPerMode = 4
	cells, err := harness.Map(len(modes)*procsPerMode, func(i int) (*obs.Collector, error) {
		m, n := modes[i/procsPerMode], i%procsPerMode+1
		r, err := core.RunMultiplex(core.MultiplexConfig{
			Mode: m, Processes: n, Completions: completions, Observe: true, SLO: slo,
		})
		if err != nil {
			return nil, fmt.Errorf("report: observed %s n=%d: %w", m, n, err)
		}
		r.Obs.SetScope(fmt.Sprintf("fig45/%s/p%d", m, n))
		return r.Obs, nil
	})
	if err != nil {
		return nil, err
	}
	_, t1, err := core.RunTable1Observed(true, slo)
	if err != nil {
		return nil, err
	}
	return append(cells, t1...), nil
}

// Observability runs the instrumented experiments once and exports
// their merged traces and metrics: a Chrome trace-event JSON stream
// (Perfetto-loadable) to traceW and Prometheus text exposition to
// promW. Either writer may be nil to skip that artifact.
func Observability(traceW, promW io.Writer, completions int) error {
	collectors, err := ObservedCollectors(completions, "")
	if err != nil {
		return err
	}
	if traceW != nil {
		if err := obs.WriteChromeTrace(traceW, collectors...); err != nil {
			return err
		}
	}
	if promW != nil {
		if err := obs.WritePrometheus(promW, collectors...); err != nil {
			return err
		}
	}
	return nil
}
