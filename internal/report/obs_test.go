package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/harness"
)

// obsEvent mirrors the Chrome trace-event fields validated here. Span
// ids in args are JSON numbers; attribute values are strings.
type obsEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Cat  string         `json:"cat"`
	Name string         `json:"name"`
	Args map[string]any `json:"args"`
}

// TestObservabilitySchema runs the instrumented experiment grid at a
// tiny completion count and validates the exported artifacts: the
// trace must be well-formed Chrome trace JSON whose parent references
// resolve within their process, and the Prometheus text must expose
// the metric families the paper tables cite.
func TestObservabilitySchema(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented grid in -short mode")
	}
	var tr, pr bytes.Buffer
	if err := Observability(&tr, &pr, 2); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Collect span ids per pid, then check every parent reference
	// resolves to a span in the same process.
	type ref struct {
		pid    int
		parent float64
		name   string
	}
	ids := map[int]map[float64]bool{}
	var refs []ref
	cats := map[string]int{}
	for i, raw := range doc.TraceEvents {
		var e obsEvent
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e.Ph != "X" {
			continue
		}
		cats[e.Cat]++
		if e.Dur < 0 || e.Ts < 0 {
			t.Fatalf("negative timestamp in event %d: %+v", i, e)
		}
		id, ok := e.Args["id"].(float64)
		if !ok {
			t.Fatalf("event %d has no numeric id: %+v", i, e)
		}
		if ids[e.Pid] == nil {
			ids[e.Pid] = map[float64]bool{}
		}
		ids[e.Pid][id] = true
		if p, ok := e.Args["parent"].(float64); ok {
			refs = append(refs, ref{e.Pid, p, e.Name})
		}
	}
	for _, r := range refs {
		if !ids[r.pid][r.parent] {
			t.Errorf("span %q in pid %d references unknown parent %v", r.name, r.pid, r.parent)
		}
	}
	for _, cat := range []string{"dfk", "htex", "simgpu"} {
		if cats[cat] == 0 {
			t.Errorf("no %q spans in trace (cats = %v)", cat, cats)
		}
	}

	prom := pr.String()
	for _, fam := range []string{
		"# TYPE faas_tasks_completed_total counter",
		"# TYPE faas_task_run_seconds histogram",
		"# TYPE htex_workers_live gauge",
		"# TYPE simgpu_domain_busy_sms gauge",
		"# TYPE simgpu_domain_context_switches_total counter",
		"# TYPE devent_events_dispatched_total counter",
	} {
		if !strings.Contains(prom, fam) {
			t.Errorf("metrics output missing %q", fam)
		}
	}
	// Scope labels distinguish the grid cells and the Table 1 runs.
	for _, scope := range []string{`scope="fig45/mps/p4"`, `scope="table1/mig"`} {
		if !strings.Contains(prom, scope) {
			t.Errorf("metrics output missing %q", scope)
		}
	}
}

// TestTraceParallelMatchesSequential extends the harness determinism
// contract to the observability artifacts: trace and metrics exports
// must be byte-identical at any worker count.
func TestTraceParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented grid in -short mode")
	}
	render := func(workers int) ([]byte, []byte) {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		var tr, pr bytes.Buffer
		if err := Observability(&tr, &pr, 2); err != nil {
			t.Fatalf("Observability with %d workers: %v", workers, err)
		}
		return tr.Bytes(), pr.Bytes()
	}
	seqT, seqP := render(1)
	if len(seqT) == 0 || len(seqP) == 0 {
		t.Fatal("sequential artifacts are empty")
	}
	parT, parP := render(4)
	if !bytes.Equal(seqT, parT) {
		t.Fatalf("parallel trace differs from sequential (%d vs %d bytes):\n%s",
			len(parT), len(seqT), firstDiff(seqT, parT))
	}
	if !bytes.Equal(seqP, parP) {
		t.Fatalf("parallel metrics differ from sequential:\n%s", firstDiff(seqP, parP))
	}
}
