package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/repart"
)

// Repart runs the phase-shifted two-tenant scenario under every static
// Table 1 plan and under the online repartitioning controller, and
// prints the comparison: the controller must beat the best static plan
// on total task completion time because no fixed partition suits both
// phases of the workload.
func Repart(w io.Writer, spec repart.Spec) error {
	header(w, "online repartitioning — phase-shifted tenants vs static Table 1 plans")
	fmt.Fprintf(w, "controller spec: %s\n", specString(spec))
	// One cell per static mode plus the controlled run; each cell is an
	// independent simulation, so the grid runs in parallel.
	n := len(core.Table1Modes) + 1
	cells, err := harness.Map(n, func(i int) (*core.PhaseShiftResult, error) {
		if i == len(core.Table1Modes) {
			s := spec
			return core.RunPhaseShift(core.PhaseShiftConfig{Repart: &s})
		}
		return core.RunPhaseShift(core.PhaseShiftConfig{Mode: core.Table1Modes[i]})
	})
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "plan\tmakespan (s)\tmean latency (s)\tp95 (s)\ttransitions\tcache hit/miss")
	for _, r := range cells {
		name := string(r.Mode) + " (static)"
		if r.Repart {
			name = "repart (online)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d/%d\n", name,
			sec(r.Makespan), sec(r.Latencies.Mean()), sec(r.Latencies.Percentile(95)),
			r.Transitions, r.CacheHits, r.CacheMisses)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	ctl := cells[len(core.Table1Modes)]
	best := cells[0]
	for _, r := range cells[:len(core.Table1Modes)] {
		if r.Makespan < best.Makespan {
			best = r
		}
	}
	fmt.Fprintf(w, "\ncontroller vs best static plan (%s): %s s vs %s s (−%.0f%%), %d transitions,\n",
		best.Mode, sec(ctl.Makespan), sec(best.Makespan),
		(1-ctl.Makespan.Seconds()/best.Makespan.Seconds())*100, ctl.Transitions)
	fmt.Fprintln(w, "every post-transition worker restart re-attached cached weights instead of reloading.")
	return nil
}

// specString renders the controller spec, naming the defaults when the
// spec is empty so the report is self-describing.
func specString(spec repart.Spec) string {
	if s := spec.String(); s != "" {
		return s
	}
	return "(defaults: policy=knee,mode=mps,interval=10s)"
}
