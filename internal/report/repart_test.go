package report

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/repart"
)

// TestRepartParallelMatchesSequential locks in the controller's
// determinism contract: the repart comparison report — six independent
// simulations including the online-controlled one — must render
// byte-identically at any harness parallelism. Every controller input
// (counters, histogram sums, the virtual clock) is a pure function of
// each Env's event order, so host scheduling cannot leak into the
// decisions or the table.
func TestRepartParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario grid in -short mode")
	}
	spec, err := repart.ParseSpec("policy=knee,interval=10s")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) []byte {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		var b bytes.Buffer
		if err := Repart(&b, spec); err != nil {
			t.Fatalf("Repart with %d workers: %v", workers, err)
		}
		return b.Bytes()
	}
	seq := render(1)
	if len(seq) == 0 {
		t.Fatal("sequential report is empty")
	}
	par := render(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel output differs from sequential (%d vs %d bytes):\n%s",
			len(par), len(seq), firstDiff(seq, par))
	}
}
