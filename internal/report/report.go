// Package report renders each of the paper's figures and tables from
// fresh simulation runs, as aligned text suitable for terminals and
// for EXPERIMENTS.md. Each ReportX function regenerates one artifact;
// All runs the full evaluation.
package report

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/llm"
	"repro/internal/models"
	"repro/internal/moldesign"
	"repro/internal/rightsize"
	"repro/internal/simgpu"
	"repro/internal/trace"
)

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func sec(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()) }

// Fig1 prints per-convolution-layer GFLOPs for the CNN zoo (the
// series of the paper's Fig. 1), for the requested batch sizes.
func Fig1(w io.Writer, batches []int) error {
	if len(batches) == 0 {
		batches = []int{1}
	}
	header(w, "Figure 1 — per-layer compute variation of image-classification CNNs")
	for _, m := range models.Zoo() {
		prof := m.ConvProfile()
		fmt.Fprintf(w, "\n%s: %d conv layers, %.2f GFLOPs/image, %.1fM params\n",
			m.Name, len(prof), m.PerSampleFLOPs()/1e9, float64(m.TotalParams())/1e6)
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprint(tw, "layer\tname")
		for _, b := range batches {
			fmt.Fprintf(tw, "\tGFLOPs(b=%d)", b)
		}
		fmt.Fprintln(tw)
		for _, p := range prof {
			fmt.Fprintf(tw, "%d\t%s", p.Index, p.Name)
			for _, b := range batches {
				fmt.Fprintf(tw, "\t%.3f", p.GFLOPs*float64(b))
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		min, max := prof[0].GFLOPs, prof[0].GFLOPs
		for _, p := range prof {
			if p.GFLOPs < min {
				min = p.GFLOPs
			}
			if p.GFLOPs > max {
				max = p.GFLOPs
			}
		}
		fmt.Fprintf(w, "layer-to-layer dynamic range: %.1fx (min %.4f, max %.4f GFLOPs)\n", max/min, min, max)
	}
	// Contrast: transformer decode is uniform across depth, which is
	// why a fixed partition size (Fig. 2's knee) suits LLMs.
	spec := models.LLaMa27B()
	prof := spec.DecodeLayerProfile(2)
	min, max := prof[1].GFLOPs, prof[1].GFLOPs
	for _, p := range prof[1 : len(prof)-1] { // skip embed gather & head
		if p.GFLOPs < min {
			min = p.GFLOPs
		}
		if p.GFLOPs > max {
			max = p.GFLOPs
		}
	}
	fmt.Fprintf(w, "\ncontrast — %s decode: %d sublayers, per-layer range only %.1fx: LLM demand is flat,\n",
		spec.Name, len(prof), max/min)
	fmt.Fprintln(w, "so one right-sized partition serves the whole forward pass.")
	return nil
}

// Fig2 prints the LLaMa-2 latency-vs-SMs sweep plus CPU baselines.
func Fig2(w io.Writer, percents []int) error {
	if len(percents) == 0 {
		percents = []int{5, 10, 15, 19, 25, 37, 50, 75, 100}
	}
	header(w, "Figure 2 — LLaMa-2 inference runtime vs #SMs under CUDA MPS (fp32)")
	res, err := core.Fig2Sweep(percents)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tMPS %\t#SMs\tlatency (s, 20-token completion)")
	for _, p := range res.Points {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", p.Model, p.Percent, p.SMs, sec(p.Latency))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Fixed order (not map iteration) so output is byte-reproducible.
	for _, model := range []string{"llama2-7b", "llama2-13b"} {
		fmt.Fprintf(w, "CPU baseline %s: %s s\n", model, sec(res.CPUBaselines[model]))
	}
	fmt.Fprintln(w, "observation: latency stops improving beyond ~20 SMs — the model cannot use more.")
	return nil
}

// Fig3 runs the molecular-design campaign and prints the phase
// summary, Gantt chart, and GPU idle statistics.
func Fig3(w io.Writer, cfg moldesign.Config) error {
	header(w, "Figure 3 — molecular-design campaign task timeline and GPU idle time")
	res, err := core.RunMolDesign(cfg)
	if err != nil {
		return err
	}
	rep := res.Report
	fmt.Fprintf(w, "campaign: %d initial + %d rounds × %d batch; dataset %d; makespan %s s\n",
		cfg.InitialPool, cfg.Rounds, cfg.BatchSize, rep.Dataset, sec(res.Makespan))
	fmt.Fprintf(w, "best IP found %.3f (initial random best %.3f, pool mean %.3f); emulator RMSE %.3f\n",
		rep.BestIP, rep.InitialBestIP, rep.PoolMeanIP, rep.FinalRMSE)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\ttasks\tbusy (s)\tsummed task time (s)")
	for _, s := range res.Trace.Summarize() {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", s.Kind, s.Count, sec(s.TotalBusy), sec(s.SumSpans))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "GPU busy fraction: %.0f%% (%d idle gaps — the \"white lines\" of Fig. 3)\n",
		res.GPUBusyFraction*100, res.GPUIdleGaps)
	fmt.Fprintln(w, "\ntimeline (S=simulation on CPU workers, T=training, I=inference on the GPU worker):")
	fmt.Fprint(w, res.Trace.Gantt(trace.GanttOpts{Width: 100, GroupBy: "kind", Glyphs: map[string]rune{
		"simulation": 'S', "training": 'T', "inference": 'I',
	}}))
	fmt.Fprintf(w, "%10s  |%s| busy SMs (0..%d)\n", "gpu util",
		trace.Sparkline(res.DeviceBusy, res.Makespan, 100, float64(res.DeviceSMs)), res.DeviceSMs)
	// The paper's remark under Fig. 3: pipelining raises utilization.
	piped, err := core.RunMolDesignPipelined(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\npipelined variant (paper: \"pipe-lining ... will yield higher accelerator utilization\"):\n")
	fmt.Fprintf(w, "  makespan %s s → %s s (−%.0f%%); GPU busy %.0f%% → %.0f%%; same %d simulations, best IP %.3f\n",
		sec(res.Makespan), sec(piped.Makespan),
		(1-piped.Makespan.Seconds()/res.Makespan.Seconds())*100,
		res.GPUBusyFraction*100, piped.GPUBusyFraction*100,
		piped.Report.Dataset, piped.Report.BestIP)
	return nil
}

// Fig45 runs the multiplexed-vs-non-multiplexed matrix and prints
// both the completion-time figure (Fig. 4) and the latency figure
// (Fig. 5), plus the derived headline claims.
func Fig45(w io.Writer, completions int) error {
	if completions <= 0 {
		completions = 100
	}
	header(w, "Figures 4 & 5 — 100 LLaMa-2-7B completions under time-sharing, MPS, and MIG")
	type cell = *core.MultiplexResult
	modes := []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG}
	// The 3 modes × 4 process counts are 12 independent simulations —
	// run the grid cells in parallel and index results by position.
	const procsPerMode = 4
	cells, err := harness.Map(len(modes)*procsPerMode, func(i int) (cell, error) {
		m, n := modes[i/procsPerMode], i%procsPerMode+1
		r, err := core.RunMultiplex(core.MultiplexConfig{Mode: m, Processes: n, Completions: completions})
		if err != nil {
			return nil, fmt.Errorf("report: %s n=%d: %w", m, n, err)
		}
		return r, nil
	})
	if err != nil {
		return err
	}
	results := map[core.Mode]map[int]cell{}
	for i, r := range cells {
		m, n := modes[i/procsPerMode], i%procsPerMode+1
		if results[m] == nil {
			results[m] = map[int]cell{}
		}
		results[m][n] = r
	}
	fmt.Fprintf(w, "\nFig 4 — total task completion time (s) for %d completions:\n", completions)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "processes\ttimeshare\tMPS (equal %)\tMIG")
	for n := 1; n <= 4; n++ {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", n,
			sec(results[core.ModeTimeshare][n].Makespan),
			sec(results[core.ModeMPS][n].Makespan),
			sec(results[core.ModeMIG][n].Makespan))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nFig 5 — average per-inference latency (s):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "processes\ttimeshare\tMPS (equal %)\tMIG")
	for n := 1; n <= 4; n++ {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", n,
			sec(results[core.ModeTimeshare][n].MeanLatency()),
			sec(results[core.ModeMPS][n].MeanLatency()),
			sec(results[core.ModeMIG][n].MeanLatency()))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	single := results[core.ModeTimeshare][1]
	mps4 := results[core.ModeMPS][4]
	ts4 := results[core.ModeTimeshare][4]
	fmt.Fprintf(w, "\nheadline claims (paper → measured):\n")
	fmt.Fprintf(w, "  completion time, 4-way MPS vs 1 process: −60%% → −%.0f%%\n",
		(1-mps4.Makespan.Seconds()/single.Makespan.Seconds())*100)
	fmt.Fprintf(w, "  throughput, 4-way MPS vs 1 process: 2.5x → %.2fx\n",
		mps4.Throughput/single.Throughput)
	fmt.Fprintf(w, "  latency, 4-way MPS vs 4-way timeshare: −44%% → −%.0f%%\n",
		(1-mps4.MeanLatency().Seconds()/ts4.MeanLatency().Seconds())*100)
	fmt.Fprintf(w, "  GPU utilization at 4 processes: timeshare %.0f%%, MPS %.0f%%, MIG %.0f%%\n",
		ts4.Utilization*100, mps4.Utilization*100, results[core.ModeMIG][4].Utilization*100)
	return nil
}

// Table1 prints the quantified multiplexing-technique comparison.
func Table1(w io.Writer) error {
	header(w, "Table 1 — GPU multiplexing techniques, quantified on a common 4-tenant burst")
	rows, err := core.RunTable1()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\tutilization\tthroughput (req/s)\tmean latency (s)\tvictim CoV\tctx switches\treconfig (s)\tmem isolation\tsoftware")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f%%\t%.3f\t%s\t%.3f\t%d\t%s\t%v\t%s\n",
			r.Technique, r.Utilization*100, r.Throughput, sec(r.MeanLatency),
			r.VictimCoV, r.ContextSwitches, sec(r.ReconfigDowntime), r.MemoryIsolated, r.Software)
	}
	return tw.Flush()
}

// ColdStart prints the §6 cold-start breakdown.
func ColdStart(w io.Writer) error {
	header(w, "§6 — GPU serverless cold-start breakdown")
	rows, err := core.RunColdStart(2 * time.Second)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tfunction init (s)\tcontext init (s)\tmodel load (s)\ttotal (s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Scenario,
			sec(r.WorkerInit), sec(r.ContextInit), sec(r.ModelLoad), sec(r.Total))
	}
	return tw.Flush()
}

// Reconfig prints the §6/§7 re-partitioning costs including the
// weight-cache ablation.
func Reconfig(w io.Writer) error {
	header(w, "§6/§7 — re-partitioning downtime (LLaMa-2-7B fp32)")
	rows, err := core.RunReconfig(2 * time.Second)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "approach\tdowntime (s)\tnote")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Approach, sec(r.Downtime), r.Note)
	}
	return tw.Flush()
}

// Rightsize prints the §7 right-sizing study: measured sweep, knee,
// recommendation, and the static estimator's agreement.
func Rightsize(w io.Writer) error {
	header(w, "§7 — right-sizing a GPU partition for LLaMa-2-7B")
	spec := simgpu.A100SXM480GB()
	cfg := llm.LLaMa27B()
	curve, err := rightsize.Sweep(spec.SMs, []int{5, 10, 15, 19, 25, 37, 50, 75, 100},
		func(pct int) (time.Duration, error) { return measureForRightsize(cfg, pct) })
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "#SMs\tMPS %\tlatency (s)")
	for _, p := range curve {
		fmt.Fprintf(tw, "%d\t%d\t%s\n", p.SMs, p.Percent, sec(p.Latency))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	rec, err := rightsize.Recommend(spec, curve, 0.05, cfg.FootprintBytes())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "knee: %d SMs (latency %s s)\n", rec.KneeSMs, sec(rec.KneeLatency))
	fmt.Fprintf(w, "recommendation: MPS %d%%, MIG profile %s, up to %d tenants per GPU\n",
		rec.MPSPercent, rec.MIGProfile, rec.TenantsPerGPU)
	// Static estimator from the decode kernel stream.
	kernels := []simgpu.Kernel{{
		FLOPs:  cfg.TokenComputeTime.Seconds() * float64(cfg.SaturationSMs) * spec.PerSMFLOPS(),
		Bytes:  cfg.TokenMemFraction * cfg.TokenComputeTime.Seconds() * spec.MemBW,
		MaxSMs: cfg.SaturationSMs,
	}}
	static := rightsize.DemandSMs(spec, kernels, 0.9)
	fmt.Fprintf(w, "static estimate from kernel stream: %d SMs (measured knee: %d)\n", static, rec.KneeSMs)
	return nil
}

func measureForRightsize(cfg llm.Config, pct int) (time.Duration, error) {
	res, err := core.Fig2SinglePoint(cfg, pct)
	if err != nil {
		return 0, err
	}
	return res, nil
}

// All regenerates every artifact in paper order. Artifacts render
// concurrently (each into its own buffer, one Env per scenario inside)
// and are written in paper order, so the output is byte-identical to
// running them sequentially.
func All(w io.Writer, completions int) error {
	return harness.Render(w,
		harness.Section{Name: "fig1", Render: func(w io.Writer) error { return Fig1(w, []int{1, 8, 32}) }},
		harness.Section{Name: "fig2", Render: func(w io.Writer) error { return Fig2(w, nil) }},
		harness.Section{Name: "fig3", Render: func(w io.Writer) error { return Fig3(w, moldesign.DefaultConfig()) }},
		harness.Section{Name: "fig45", Render: func(w io.Writer) error { return Fig45(w, completions) }},
		harness.Section{Name: "table1", Render: Table1},
		harness.Section{Name: "coldstart", Render: ColdStart},
		harness.Section{Name: "reconfig", Render: Reconfig},
		harness.Section{Name: "rightsize", Render: Rightsize},
		harness.Section{Name: "ablations", Render: Ablations},
		harness.Section{Name: "mixed", Render: MixedTenancy},
		harness.Section{Name: "openloop", Render: OpenLoop},
	)
}
