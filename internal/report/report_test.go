package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/moldesign"
)

func TestFig1Report(t *testing.T) {
	var b strings.Builder
	if err := Fig1(&b, []int{1, 8}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"resnet50", "resnet101", "vgg16", "alexnet",
		"GFLOPs(b=1)", "GFLOPs(b=8)", "dynamic range"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
	// ResNet-50's stem conv shows up with its well-known cost.
	if !strings.Contains(out, "conv1") {
		t.Error("missing conv1 row")
	}
}

func TestFig2Report(t *testing.T) {
	var b strings.Builder
	if err := Fig2(&b, []int{10, 19, 100}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"llama2-7b", "llama2-13b", "CPU baseline", "180.00", "360.00", "~20 SMs"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output missing %q", want)
		}
	}
}

func TestFig3Report(t *testing.T) {
	cfg := moldesign.DefaultConfig()
	cfg.InitialPool = 8
	cfg.CandidatePool = 500
	cfg.BatchSize = 4
	cfg.Rounds = 2
	var b strings.Builder
	if err := Fig3(&b, cfg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"simulation", "training", "inference", "GPU busy fraction", "timeline"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
}

func TestFig45Report(t *testing.T) {
	var b strings.Builder
	if err := Fig45(&b, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 4", "Fig 5", "timeshare", "MPS", "MIG",
		"headline claims", "throughput, 4-way MPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig45 output missing %q", want)
		}
	}
}

func TestTable1Report(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"technique", "timeshare", "mps-default", "mig", "vgpu",
		"nvidia-cuda-mps-control", "nvidia-smi", "NVIDIA vGPU driver"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestColdStartAndReconfigReports(t *testing.T) {
	var b strings.Builder
	if err := ColdStart(&b); err != nil {
		t.Fatal(err)
	}
	if err := Reconfig(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"model load", "llama2-13b fp32", "MPS repartition", "weight cache", "MIG re-layout"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRightsizeReport(t *testing.T) {
	var b strings.Builder
	if err := Rightsize(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"knee", "recommendation", "MIG profile", "static estimate"} {
		if !strings.Contains(out, want) {
			t.Errorf("rightsize output missing %q", want)
		}
	}
}

func TestAblationsReport(t *testing.T) {
	var b strings.Builder
	if err := Ablations(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Ablation A", "Ablation B", "Ablation C", "Ablation D",
		"MIG penalty", "batch x4", "multiplex MPS x4", "quantum"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations output missing %q", want)
		}
	}
}

func TestMixedTenancyReport(t *testing.T) {
	var b strings.Builder
	if err := MixedTenancy(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"resnet p99", "meets 100ms", "timeshare", "mig"} {
		if !strings.Contains(out, want) {
			t.Errorf("mixed output missing %q", want)
		}
	}
}

func TestWriteFigureCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFigureCSVs(dir, 8); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2.csv", "fig4.csv", "fig5.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 5 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
	// fig4 has 12 rows (3 modes × 4 process counts) plus a header.
	data, _ := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if got := strings.Count(string(data), "\n"); got != 13 {
		t.Errorf("fig4 rows = %d", got-1)
	}
}

func TestOpenLoopReport(t *testing.T) {
	var b strings.Builder
	if err := OpenLoop(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"stable", "p99", "timeshare", "mps"} {
		if !strings.Contains(out, want) {
			t.Errorf("openloop output missing %q", want)
		}
	}
}
