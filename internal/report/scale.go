package report

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// ScaleOptions parameterizes the million-task throughput artifact.
// Zero values take the core.ScaleConfig defaults.
type ScaleOptions struct {
	Tasks, Shards, Workers, Window int
	ArrivalRate                    float64
	Seed                           int64
	// SampleMod enables deterministic span sampling in streaming mode
	// (kept task trees ~1/SampleMod).
	SampleMod int
	// Stream runs with per-shard streaming sinks (bounded collection
	// memory); false keeps the snapshot collector.
	Stream bool
	// Compare runs the scenario twice — snapshot then streaming — and
	// reports both, plus the events/sec delta. Implies Stream for the
	// second run.
	Compare bool
	// TracePath, when set with Stream, spills each shard's Chrome
	// trace section to a temp file during the run and splices them into
	// one Perfetto-loadable artifact at this path.
	TracePath string
	// Telemetry forwards to core.ScaleConfig.Telemetry: per-shard tsdb
	// stores and progress callbacks for the live observability plane.
	// With Compare it attaches to the streaming run only (attaching the
	// same shard scopes twice would double-register them).
	Telemetry *core.ScaleTelemetry
	// WrapSink, when set with Stream, wraps each shard's span sink —
	// the live server tees its /spans tail in here. Ignored without
	// Stream (snapshot collection has no sink to tee).
	WrapSink func(shard int, base obs.SpanSink) obs.SpanSink
	// Alerts, when set, renders each shard's end-of-run alert-rule
	// history (engine state + resolved incidents, shard order) to this
	// writer, forcing per-shard tsdb stores on if Telemetry hasn't
	// already. With Compare the shards reported are the streaming
	// run's (telemetry attaches there only). Purely virtual:
	// byte-identical at any -parallel level and under -stream.
	Alerts io.Writer
}

func (o ScaleOptions) config() core.ScaleConfig {
	return core.ScaleConfig{
		Tasks: o.Tasks, Shards: o.Shards, Workers: o.Workers, Window: o.Window,
		ArrivalRate: o.ArrivalRate, Seed: o.Seed, SampleMod: o.SampleMod,
	}.WithDefaults()
}

// discardSink enables streaming collection without retaining the
// rendered spans (the scenario's counters are the artifact).
type discardSink struct{}

func (discardSink) EmitSpan(*obs.Span) {}

// scaleWall holds the wall-clock side of one run. These numbers vary
// run to run; everything in core.ScaleResult is virtual and
// deterministic. Determinism tests must only assert the latter.
type scaleWall struct {
	elapsed    time.Duration
	allocs     uint64 // heap objects allocated during the run
	allocBytes uint64 // bytes allocated during the run
}

func (w scaleWall) eventsPerSec(events int64) float64 {
	if w.elapsed <= 0 {
		return 0
	}
	return float64(events) / w.elapsed.Seconds()
}

// Scale runs the million-task scenario and writes the throughput
// artifact: the deterministic virtual results ("virtual:" and
// "shard N:" lines, byte-identical at any -parallel level) followed by
// wall-clock measurements ("wall:" lines — elapsed, events/sec, and
// the allocation proxy for peak memory).
func Scale(w io.Writer, opts ScaleOptions) error {
	bw := bufio.NewWriter(w)
	header(bw, "Million-task throughput — sharded open-loop scenario")
	cfg := opts.config()
	// Alerts need the shard stores, which only surface through the
	// telemetry hook: force per-shard tsdbs on and capture each handle
	// into its shard slot (index-addressed, so capture order — and with
	// it the rendered artifact — is independent of shard scheduling).
	var shardDBs []*tsdb.DB
	if opts.Alerts != nil {
		tel := core.ScaleTelemetry{}
		if opts.Telemetry != nil {
			tel = *opts.Telemetry
		}
		if tel.TSDB == nil {
			tel.TSDB = &tsdb.Config{}
		}
		shardDBs = make([]*tsdb.DB, cfg.Shards)
		inner := tel.OnShardDB
		tel.OnShardDB = func(shard int, db *tsdb.DB) {
			shardDBs[shard] = db
			if inner != nil {
				inner(shard, db)
			}
		}
		opts.Telemetry = &tel
	}
	if opts.Compare {
		snapRes, snapWall, err := runScale(cfg, ScaleOptions{}, false)
		if err != nil {
			return err
		}
		writeScaleRun(bw, "snapshot", cfg, snapRes, snapWall)
		strRes, strWall, err := runScale(cfg, opts, true)
		if err != nil {
			return err
		}
		fmt.Fprintln(bw)
		writeScaleRun(bw, "streaming", cfg, strRes, strWall)
		snapEPS, strEPS := snapWall.eventsPerSec(snapRes.Events), strWall.eventsPerSec(strRes.Events)
		fmt.Fprintln(bw)
		fmt.Fprintf(bw, "compare: events_per_sec snapshot=%.0f streaming=%.0f speedup=%+.1f%%\n",
			snapEPS, strEPS, 100*(strEPS/snapEPS-1))
		fmt.Fprintf(bw, "compare: retained_high_water snapshot=%d streaming=%d\n",
			snapRes.MaxRetained, strRes.MaxRetained)
		fmt.Fprintf(bw, "compare: alloc_bytes snapshot=%d streaming=%d\n",
			snapWall.allocBytes, strWall.allocBytes)
		if err := writeScaleAlerts(opts.Alerts, shardDBs); err != nil {
			return err
		}
		return bw.Flush()
	}
	mode := "snapshot"
	if opts.Stream {
		mode = "streaming"
	}
	res, wall, err := runScale(cfg, opts, opts.Stream)
	if err != nil {
		return err
	}
	writeScaleRun(bw, mode, cfg, res, wall)
	if err := writeScaleAlerts(opts.Alerts, shardDBs); err != nil {
		return err
	}
	return bw.Flush()
}

// writeScaleAlerts renders each shard's alert history in shard order.
func writeScaleAlerts(w io.Writer, dbs []*tsdb.DB) error {
	if w == nil {
		return nil
	}
	for i, db := range dbs {
		if db == nil {
			continue
		}
		if err := tsdb.WriteAlertHistory(w, fmt.Sprintf("shard=%d ", i), db); err != nil {
			return err
		}
	}
	return nil
}

// runScale executes one scenario run, timing it and measuring
// allocation deltas. In streaming mode with a trace path, each shard's
// section spills to its own temp file as the run progresses, and the
// files are spliced into the final artifact afterwards.
func runScale(cfg core.ScaleConfig, opts ScaleOptions, stream bool) (*core.ScaleResult, scaleWall, error) {
	tracePath := opts.TracePath
	cfg.Telemetry = opts.Telemetry
	var wall scaleWall
	var files []*os.File
	var writers []*bufio.Writer
	var sections []*obs.TraceSection
	if stream {
		cfg = cfg.WithDefaults()
		cfg.Sinks = make([]obs.SpanSink, cfg.Shards)
		for i := range cfg.Sinks {
			if tracePath == "" {
				cfg.Sinks[i] = discardSink{}
				continue
			}
			f, err := os.CreateTemp("", "scale-shard-*.trace")
			if err != nil {
				return nil, wall, err
			}
			files = append(files, f)
			fw := bufio.NewWriterSize(f, 1<<20)
			writers = append(writers, fw)
			sec := obs.NewTraceSection(fw, i+1, fmt.Sprintf("scale/shard%d", i))
			sections = append(sections, sec)
			cfg.Sinks[i] = sec
		}
		if opts.WrapSink != nil {
			for i := range cfg.Sinks {
				cfg.Sinks[i] = opts.WrapSink(i, cfg.Sinks[i])
			}
		}
		defer func() {
			for _, f := range files {
				f.Close()
				os.Remove(f.Name())
			}
		}()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, err := core.RunMillionTask(cfg)
	wall.elapsed = time.Since(t0)
	runtime.ReadMemStats(&after)
	wall.allocs = after.Mallocs - before.Mallocs
	wall.allocBytes = after.TotalAlloc - before.TotalAlloc
	if err != nil {
		return nil, wall, err
	}
	if stream && tracePath != "" {
		for i, sec := range sections {
			if err := sec.Err(); err != nil {
				return nil, wall, err
			}
			if err := writers[i].Flush(); err != nil {
				return nil, wall, err
			}
		}
		out, err := os.Create(tracePath)
		if err != nil {
			return nil, wall, err
		}
		defer out.Close()
		ts := obs.NewTraceStream(out)
		for _, f := range files {
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return nil, wall, err
			}
			if err := ts.Append(bufio.NewReaderSize(f, 1<<20)); err != nil {
				return nil, wall, err
			}
		}
		if err := ts.Close(); err != nil {
			return nil, wall, err
		}
	}
	return res, wall, nil
}

// writeScaleRun renders one run: config echo, deterministic virtual
// lines, then wall-clock lines.
func writeScaleRun(w io.Writer, mode string, cfg core.ScaleConfig, res *core.ScaleResult, wall scaleWall) {
	c := cfg.WithDefaults()
	fmt.Fprintf(w, "config: mode=%s tasks=%d shards=%d workers=%d window=%d arrival=%.0f/s seed=%d sample_mod=%d\n",
		mode, res.Tasks, len(res.Shards), c.Workers, c.Window, c.ArrivalRate, c.Seed, c.SampleMod)
	fmt.Fprintf(w, "virtual: events=%d spans=%d retained_high_water=%d makespan=%s\n",
		res.Events, res.Spans, res.MaxRetained, res.Makespan)
	fmt.Fprintf(w, "virtual: latency p50=%s p90=%s p99=%s max=%s\n",
		res.Latencies.Percentile(50), res.Latencies.Percentile(90),
		res.Latencies.Percentile(99), res.Latencies.Max())
	for _, sr := range res.Shards {
		fmt.Fprintf(w, "shard %d: tasks=%d events=%d spans=%d retained=%d makespan=%s\n",
			sr.Shard, sr.Tasks, sr.Events, sr.Spans, sr.MaxRetained, sr.Makespan)
	}
	fmt.Fprintf(w, "wall: elapsed=%s events_per_sec=%.0f\n", wall.elapsed.Round(time.Millisecond), wall.eventsPerSec(res.Events))
	fmt.Fprintf(w, "wall: allocs=%d alloc_bytes=%d\n", wall.allocs, wall.allocBytes)
}
