package report

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// streamedCell is one instrumented grid cell run in streaming mode:
// its spans were flushed into a pre-rendered trace section (pid =
// cell position, matching WriteChromeTrace) as they ended, and an
// analyze.Streamer attributed its tasks incrementally. The collector
// survives only as the metrics registry plus the bounded retained
// window — nothing in the cell grows with span count except the
// rendered section bytes themselves.
type streamedCell struct {
	col *obs.Collector
	st  *analyze.Streamer
	sec *obs.TraceSection
	buf bytes.Buffer
}

// attach returns the core.Options.OnCollector hook wiring this cell:
// trace-section sink, optional deterministic sampler, and streamer,
// installed before the run's first span.
func (sc *streamedCell) attach(pid int, scope string, sampleMod int) func(*obs.Collector) {
	return func(c *obs.Collector) {
		sc.col = c
		sc.sec = obs.NewTraceSection(&sc.buf, pid, scope)
		c.SetSink(sc.sec)
		if sampleMod > 1 {
			c.SetSampleMod(sampleMod)
		}
		sc.st = analyze.NewStreamer(c)
	}
}

// observedStreams reruns the ObservedCollectors grid (fig45 cells then
// Table 1 rows, same order, same scopes) in streaming mode. Cells run
// concurrently through the harness; each renders into its own buffer,
// so the assembled artifacts are byte-identical at any parallelism —
// and, with sampleMod <= 1, byte-identical to the snapshot path.
func observedStreams(completions int, slo string, sampleMod int) ([]*streamedCell, error) {
	if completions <= 0 {
		completions = 100
	}
	modes := []core.Mode{core.ModeTimeshare, core.ModeMPS, core.ModeMIG}
	const procsPerMode = 4
	nGrid := len(modes) * procsPerMode
	grid, err := harness.Map(nGrid, func(i int) (*streamedCell, error) {
		m, n := modes[i/procsPerMode], i%procsPerMode+1
		scope := fmt.Sprintf("fig45/%s/p%d", m, n)
		sc := &streamedCell{}
		r, err := core.RunMultiplex(core.MultiplexConfig{
			Mode: m, Processes: n, Completions: completions, Observe: true, SLO: slo,
			OnCollector: sc.attach(i+1, scope, sampleMod),
		})
		if err != nil {
			return nil, fmt.Errorf("report: streamed %s n=%d: %w", m, n, err)
		}
		r.Obs.SetScope(scope)
		r.Obs.Close()
		return sc, nil
	})
	if err != nil {
		return nil, err
	}
	t1 := make([]*streamedCell, len(core.Table1Modes))
	for i := range t1 {
		t1[i] = &streamedCell{}
	}
	// The table1 scope is assigned inside the run; the section needs it
	// up front, and the mode order is fixed, so it is known here.
	_, t1cols, err := core.RunTable1ObservedHook(true, slo, func(i int, c *obs.Collector) {
		t1[i].attach(nGrid+i+1, "table1/"+string(core.Table1Modes[i]), sampleMod)(c)
	})
	if err != nil {
		return nil, err
	}
	for _, c := range t1cols {
		c.Close()
	}
	return append(grid, t1...), nil
}

// ObservabilityStreamed is Observability in streaming mode: the same
// instrumented rerun, but every cell's spans are flushed to its trace
// section as they end instead of being retained for a final snapshot,
// and the artifact is assembled by splicing the pre-rendered sections.
// With sampleMod <= 1 the output is byte-identical to Observability;
// sampleMod n > 1 deterministically keeps ~1/n of task trees in the
// trace (metrics are unaffected). Either writer may be nil.
func ObservabilityStreamed(traceW, promW io.Writer, completions, sampleMod int) error {
	cells, err := observedStreams(completions, "", sampleMod)
	if err != nil {
		return err
	}
	if traceW != nil {
		ts := obs.NewTraceStream(traceW)
		for _, sc := range cells {
			if err := sc.sec.Err(); err != nil {
				return err
			}
			if err := ts.Append(bytes.NewReader(sc.buf.Bytes())); err != nil {
				return err
			}
		}
		if err := ts.Close(); err != nil {
			return err
		}
	}
	if promW != nil {
		cols := make([]*obs.Collector, len(cells))
		for i, sc := range cells {
			cols[i] = sc.col
		}
		if err := obs.WritePrometheus(promW, cols...); err != nil {
			return err
		}
	}
	return nil
}

// AttributionArtifactsStreamed is AttributionArtifacts in streaming
// mode: attribution, flamegraph stacks, and the alert stream come from
// incremental analyzers driven by the span stream, byte-identical to
// the snapshot artifacts. Any writer may be nil.
func AttributionArtifactsStreamed(attribW, flameW, alertsW io.Writer, completions int, slo string) error {
	cells, err := observedStreams(completions, slo, 0)
	if err != nil {
		return err
	}
	streamers := make([]*analyze.Streamer, len(cells))
	for i, sc := range cells {
		streamers[i] = sc.st
	}
	rep := analyze.BuildReport(streamers...)
	if attribW != nil {
		if err := rep.WriteJSON(attribW); err != nil {
			return err
		}
	}
	if flameW != nil {
		if err := analyze.WriteFolded(flameW, rep); err != nil {
			return err
		}
	}
	if alertsW != nil {
		if err := analyze.WriteAlertsStreamed(alertsW, streamers...); err != nil {
			return err
		}
	}
	return nil
}
