package report

import (
	"bytes"
	"testing"

	"repro/internal/harness"
)

// stripModeTelemetry drops the collector self-telemetry families whose
// values truthfully differ between the snapshot and streaming
// pipelines — flush and sampling counters only advance when a sink is
// attached, and the retained-window peak is the very quantity
// streaming exists to shrink. Every other family must stay
// byte-identical across modes.
func stripModeTelemetry(prom []byte) []byte {
	var out [][]byte
	for _, line := range bytes.Split(prom, []byte("\n")) {
		trimmed := bytes.TrimPrefix(line, []byte("# TYPE "))
		if bytes.HasPrefix(trimmed, []byte("obs_spans_flushed_total")) ||
			bytes.HasPrefix(trimmed, []byte("obs_spans_sampled_out_total")) ||
			bytes.HasPrefix(trimmed, []byte("obs_spans_retained_peak")) {
			continue
		}
		out = append(out, line)
	}
	return bytes.Join(out, []byte("\n"))
}

// TestStreamedArtifactsMatchSnapshot is the regression gate for the
// streaming export path: every artifact — trace, metrics, attribution
// JSON, folded flame stacks, and SLO alerts — must be byte-identical
// whether the instrumented grid streams spans through per-cell sinks
// or snapshots them, and identical again when the streamed run uses a
// different harness worker count. With streaming off (the default CLI
// configuration) the snapshot path here is exactly what ships, so this
// also pins the artifact bytes across the refactor.
func TestStreamedArtifactsMatchSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("full instrumented grid in -short mode")
	}
	const completions = 2
	const slo = "llama-complete:2s:0.9"
	type artifacts struct{ trace, prom, attrib, flame, alerts []byte }
	render := func(workers int, streamed bool) artifacts {
		prev := harness.SetParallelism(workers)
		defer harness.SetParallelism(prev)
		var a artifacts
		var tr, pr, at, fl, al bytes.Buffer
		var err error
		if streamed {
			err = ObservabilityStreamed(&tr, &pr, completions, 0)
		} else {
			err = Observability(&tr, &pr, completions)
		}
		if err != nil {
			t.Fatalf("observability (workers=%d streamed=%v): %v", workers, streamed, err)
		}
		if streamed {
			err = AttributionArtifactsStreamed(&at, &fl, &al, completions, slo)
		} else {
			err = AttributionArtifacts(&at, &fl, &al, completions, slo)
		}
		if err != nil {
			t.Fatalf("attribution (workers=%d streamed=%v): %v", workers, streamed, err)
		}
		a.trace, a.prom = tr.Bytes(), stripModeTelemetry(pr.Bytes())
		a.attrib, a.flame, a.alerts = at.Bytes(), fl.Bytes(), al.Bytes()
		return a
	}
	check := func(label string, want, got artifacts) {
		t.Helper()
		for _, c := range []struct {
			name      string
			want, got []byte
		}{
			{"trace", want.trace, got.trace},
			{"metrics", want.prom, got.prom},
			{"attrib", want.attrib, got.attrib},
			{"flame", want.flame, got.flame},
			{"alerts", want.alerts, got.alerts},
		} {
			if len(c.want) == 0 {
				t.Fatalf("%s: empty %s baseline", label, c.name)
			}
			if !bytes.Equal(c.want, c.got) {
				t.Errorf("%s: %s differs (%d vs %d bytes):\n%s",
					label, c.name, len(c.want), len(c.got), firstDiff(c.want, c.got))
			}
		}
	}
	snap := render(1, false)
	// The SLO spec must actually fire, or the alerts comparison is
	// trivially empty-vs-empty.
	if !bytes.Contains(snap.alerts, []byte("llama-complete")) {
		t.Fatalf("no alerts in baseline output:\n%s", snap.alerts)
	}
	check("streamed sequential vs snapshot", snap, render(1, true))
	// Transitively pins streamed parallel == streamed sequential too.
	check("streamed parallel vs snapshot", snap, render(4, true))
}
