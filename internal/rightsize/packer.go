package rightsize

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/devent"
	"repro/internal/simgpu"
)

// ErrUnpackable is returned when tenant demands cannot be satisfied
// on one device.
var ErrUnpackable = errors.New("rightsize: demands do not fit the device")

// ErrDuplicateTenant is returned when two demands carry the same
// tenant name: plans are keyed by name, so duplicates would silently
// shadow each other.
var ErrDuplicateTenant = errors.New("rightsize: duplicate tenant name")

// TenantDemand is one workload's right-sized requirement (typically
// from Recommend): SMs at the latency knee plus memory footprint.
type TenantDemand struct {
	Name     string
	SMs      int
	MemBytes int64
}

// MPSAssignment is one tenant's GPU-percentage share.
type MPSAssignment struct {
	Tenant  string
	Percent int
}

// MPSPlan is a percentage partitioning of one device.
type MPSPlan struct {
	Assignments []MPSAssignment
	// TotalPercent may exceed 100: MPS allows oversubscription, the
	// hardware then time-multiplexes (flagged so operators can see
	// it).
	TotalPercent   int
	Oversubscribed bool
}

// PackMPS apportions GPU percentages across tenants by SM demand.
// The percentage budget is the smallest total granting the aggregate
// demand — ceil(100·ΣSMs/deviceSMs) — apportioned by the largest-
// remainder method (ties broken by input order), so per-tenant
// rounding cannot inflate TotalPercent into a false Oversubscribed
// flag. Each tenant is then raised, if needed, to the minimal
// percentage whose SM grant covers its own demand (every percentage
// grants ceil(pct·SMs/100) SMs, so the floor of a fractional quota can
// fall one SM short). Memory is checked against the single shared pool
// (MPS has no isolation, but capacity is still physical).
func PackMPS(spec simgpu.DeviceSpec, demands []TenantDemand) (*MPSPlan, error) {
	var mem int64
	totalSMs := 0
	seen := make(map[string]bool, len(demands))
	for _, d := range demands {
		if d.SMs <= 0 || d.SMs > spec.SMs {
			return nil, fmt.Errorf("%w: tenant %q wants %d SMs of %d", ErrUnpackable, d.Name, d.SMs, spec.SMs)
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateTenant, d.Name)
		}
		seen[d.Name] = true
		mem += d.MemBytes
		totalSMs += d.SMs
	}
	if mem > spec.MemBytes {
		return nil, fmt.Errorf("%w: memory %d exceeds %d", ErrUnpackable, mem, spec.MemBytes)
	}
	// Largest-remainder apportionment of the aggregate budget.
	budget := int(math.Ceil(float64(totalSMs) / float64(spec.SMs) * 100))
	pcts := make([]int, len(demands))
	fracs := make([]float64, len(demands))
	rest := budget
	for i, d := range demands {
		quota := float64(d.SMs) / float64(spec.SMs) * 100
		pcts[i] = int(math.Floor(quota))
		fracs[i] = quota - float64(pcts[i])
		rest -= pcts[i]
	}
	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for k := 0; k < rest && k < len(order); k++ {
		pcts[order[k]]++
	}
	plan := &MPSPlan{}
	for i, d := range demands {
		if min := MinGrantingPercent(spec.SMs, d.SMs); pcts[i] < min {
			pcts[i] = min
		}
		plan.Assignments = append(plan.Assignments, MPSAssignment{Tenant: d.Name, Percent: pcts[i]})
		plan.TotalPercent += pcts[i]
	}
	plan.Oversubscribed = plan.TotalPercent > 100
	return plan, nil
}

// EqualShares splits a device into n equal MPS percentage shares via
// PackMPS's largest-remainder apportionment, so the shares sum to
// exactly 100 for any share count small enough that a percent still
// grants at least one SM. Naive truncation (100/n) strands up to n-1 percent —
// three processes would get 33+33+33 = 99%, leaving SMs idle. Here the
// device's SMs are apportioned first (base SMs/n each, the first
// SMs mod n tenants get one more), so for a 108-SM A100 three
// processes get 34/33/33 and five get 20×5.
func EqualShares(spec simgpu.DeviceSpec, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d shares requested", ErrUnpackable, n)
	}
	if n > spec.SMs {
		return nil, fmt.Errorf("%w: %d shares exceed %d SMs", ErrUnpackable, n, spec.SMs)
	}
	demands := make([]TenantDemand, n)
	base, extra := spec.SMs/n, spec.SMs%n
	for i := range demands {
		sms := base
		if i < extra {
			sms++
		}
		demands[i] = TenantDemand{Name: fmt.Sprintf("share%d", i), SMs: sms}
	}
	plan, err := PackMPS(spec, demands)
	if err != nil {
		return nil, err
	}
	pcts := make([]int, n)
	for i, a := range plan.Assignments {
		pcts[i] = a.Percent
	}
	return pcts, nil
}

// MinGrantingPercent is the smallest percentage whose SM grant
// (ceil(pct·deviceSMs/100)) covers sms. Exported for the fleet packer,
// which computes incremental per-tenant grants with the same rounding
// PackMPS uses, so single-device plans and fleet placements agree on
// what a percentage delivers.
func MinGrantingPercent(deviceSMs, sms int) int {
	if sms >= deviceSMs {
		return 100
	}
	return (sms-1)*100/deviceSMs + 1
}

// MIGAssignment is one tenant's MIG profile.
type MIGAssignment struct {
	Tenant  string
	Profile string
}

// MIGPlan is a placement-validated instance layout.
type MIGPlan struct {
	// Assignments pair tenants with profiles, in input order.
	Assignments []MIGAssignment
	// Layout is the profile list in the creation order that places
	// successfully (largest first).
	Layout []string
}

// PackMIG picks, for every tenant, the smallest profile covering its
// SM and memory demand, then validates that the resulting layout
// actually places on the device (slice and memory-slice constraints
// included), using the simulator's own placement engine.
func PackMIG(spec simgpu.DeviceSpec, demands []TenantDemand) (*MIGPlan, error) {
	profiles := simgpu.MIGProfilesFor(spec)
	if len(profiles) == 0 {
		return nil, fmt.Errorf("%w: %s has no MIG support", ErrUnpackable, spec.Name)
	}
	plan := &MIGPlan{}
	type sized struct {
		profile string
		slices  int
	}
	var chosen []sized
	for _, d := range demands {
		found := ""
		sl := 0
		for _, p := range profiles { // ordered small → large
			if p.Slices*spec.SMsPerSlice >= d.SMs && p.MemBytes >= d.MemBytes {
				found, sl = p.Name, p.Slices
				break
			}
		}
		if found == "" {
			return nil, fmt.Errorf("%w: no profile covers tenant %q (%d SMs, %d bytes)",
				ErrUnpackable, d.Name, d.SMs, d.MemBytes)
		}
		plan.Assignments = append(plan.Assignments, MIGAssignment{Tenant: d.Name, Profile: found})
		chosen = append(chosen, sized{found, sl})
	}
	// Place largest-first: the A100 placement table is feasibility-
	// monotone under this order for any satisfiable multiset.
	sort.SliceStable(chosen, func(i, j int) bool { return chosen[i].slices > chosen[j].slices })
	for _, c := range chosen {
		plan.Layout = append(plan.Layout, c.profile)
	}
	if err := validateLayout(spec, plan.Layout); err != nil {
		return nil, err
	}
	return plan, nil
}

// validateLayout materializes the layout on a throwaway device.
func validateLayout(spec simgpu.DeviceSpec, layout []string) error {
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "probe", spec)
	if err != nil {
		return err
	}
	if err := dev.EnableMIG(nil); err != nil {
		return err
	}
	for _, prof := range layout {
		if _, err := dev.CreateInstance(prof); err != nil {
			return fmt.Errorf("%w: layout %v: %v", ErrUnpackable, layout, err)
		}
	}
	return nil
}
