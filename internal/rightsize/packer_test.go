package rightsize

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/simgpu"
)

func TestPackMPSBasics(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	plan, err := PackMPS(spec, []TenantDemand{
		{Name: "llama", SMs: 21, MemBytes: 18 * simgpu.GB},
		{Name: "resnet", SMs: 10, MemBytes: simgpu.GB},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 31 SMs of 108 need a 29% budget; llama's larger fractional
	// quota takes the remainder unit (20%), resnet's 9% still grants
	// its 10 SMs (ceil(9·1.08) = 10).
	if plan.Assignments[0].Percent != 20 || plan.Assignments[1].Percent != 9 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.TotalPercent != 29 || plan.Oversubscribed {
		t.Fatalf("plan = %+v", plan)
	}
}

// The rounding regression the largest-remainder fix locks in: three
// 36-SM tenants exactly fill a 108-SM A100, but per-tenant ceil used
// to report 34+34+34 = 102% and a false Oversubscribed flag.
func TestPackMPSNoFalseOversubscription(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	plan, err := PackMPS(spec, []TenantDemand{
		{Name: "a", SMs: 36, MemBytes: simgpu.GB},
		{Name: "b", SMs: 36, MemBytes: simgpu.GB},
		{Name: "c", SMs: 36, MemBytes: simgpu.GB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalPercent != 100 || plan.Oversubscribed {
		t.Fatalf("plan = %+v", plan)
	}
	for _, a := range plan.Assignments {
		if got := smsForPercent(spec.SMs, a.Percent); got < 36 {
			t.Fatalf("tenant %s: %d%% grants only %d SMs", a.Tenant, a.Percent, got)
		}
	}
}

// The truncation regression the equal-shares helper locks in: naive
// 100/n gave 3 processes 33+33+33 = 99%, stranding SMs. EqualShares
// must sum to exactly 100 for every realistic share count, with shares
// differing by at most one point.
func TestEqualSharesSumToExactly100(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	for n := 1; n <= 16; n++ {
		pcts, err := EqualShares(spec, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(pcts) != n {
			t.Fatalf("n=%d: got %d shares", n, len(pcts))
		}
		sum, min, max := 0, pcts[0], pcts[0]
		for _, p := range pcts {
			sum += p
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		if sum != 100 {
			t.Fatalf("n=%d: shares %v sum to %d, want exactly 100", n, pcts, sum)
		}
		if max-min > 1 {
			t.Fatalf("n=%d: shares %v differ by more than one point", n, pcts)
		}
	}
}

func TestEqualSharesThreeWaySplit(t *testing.T) {
	pcts, err := EqualShares(simgpu.A100SXM480GB(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// 108 SMs split 36/36/36; the remainder point goes to the first
	// share: 34+33+33, not the truncated 33+33+33.
	if len(pcts) != 3 || pcts[0] != 34 || pcts[1] != 33 || pcts[2] != 33 {
		t.Fatalf("pcts = %v, want [34 33 33]", pcts)
	}
}

func TestEqualSharesInvalidCounts(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	if _, err := EqualShares(spec, 0); !errors.Is(err, ErrUnpackable) {
		t.Fatalf("n=0: err = %v", err)
	}
	if _, err := EqualShares(spec, -1); !errors.Is(err, ErrUnpackable) {
		t.Fatalf("n=-1: err = %v", err)
	}
	if _, err := EqualShares(spec, spec.SMs+1); !errors.Is(err, ErrUnpackable) {
		t.Fatalf("n>SMs: err = %v", err)
	}
}

func TestPackMPSDuplicateTenant(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	_, err := PackMPS(spec, []TenantDemand{
		{Name: "x", SMs: 10, MemBytes: simgpu.GB},
		{Name: "x", SMs: 20, MemBytes: simgpu.GB},
	})
	if !errors.Is(err, ErrDuplicateTenant) {
		t.Fatalf("err = %v", err)
	}
}

// Property: every assignment's percentage grants at least the demanded
// SMs, TotalPercent is the exact sum, and a demand set that fits the
// device compute-wise is never flagged oversubscribed (for realistic
// tenant counts).
func TestQuickPackMPSSound(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		var demands []TenantDemand
		total := 0
		for i, r := range raw {
			sms := int(r%uint8(spec.SMs)) + 1
			total += sms
			demands = append(demands, TenantDemand{
				Name:     string(rune('a' + i)),
				SMs:      sms,
				MemBytes: simgpu.GB,
			})
		}
		plan, err := PackMPS(spec, demands)
		if err != nil {
			return false // these inputs are always packable
		}
		sum := 0
		for i, a := range plan.Assignments {
			if smsForPercent(spec.SMs, a.Percent) < demands[i].SMs {
				return false
			}
			sum += a.Percent
		}
		if sum != plan.TotalPercent {
			return false
		}
		if total <= spec.SMs && plan.Oversubscribed {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackMPSOversubscription(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	plan, err := PackMPS(spec, []TenantDemand{
		{Name: "a", SMs: 80, MemBytes: simgpu.GB},
		{Name: "b", SMs: 80, MemBytes: simgpu.GB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Oversubscribed || plan.TotalPercent <= 100 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestPackMPSMemoryBound(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	_, err := PackMPS(spec, []TenantDemand{
		{Name: "a", SMs: 10, MemBytes: 50 * simgpu.GB},
		{Name: "b", SMs: 10, MemBytes: 50 * simgpu.GB},
	})
	if !errors.Is(err, ErrUnpackable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPackMPSInvalidSMs(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	if _, err := PackMPS(spec, []TenantDemand{{Name: "x", SMs: 0}}); !errors.Is(err, ErrUnpackable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := PackMPS(spec, []TenantDemand{{Name: "x", SMs: 500}}); !errors.Is(err, ErrUnpackable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPackMIGPicksSmallestCoveringProfile(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	plan, err := PackMIG(spec, []TenantDemand{
		{Name: "llama", SMs: 21, MemBytes: 18 * simgpu.GB}, // needs 2g SMs but 20GB mem ⇒ 2g.20gb
		{Name: "resnet", SMs: 10, MemBytes: 1 * simgpu.GB}, // 1g.10gb
		{Name: "big", SMs: 50, MemBytes: 35 * simgpu.GB},   // 4g.40gb
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"llama": "2g.20gb", "resnet": "1g.10gb", "big": "4g.40gb"}
	for _, a := range plan.Assignments {
		if want[a.Tenant] != a.Profile {
			t.Fatalf("tenant %s got %s, want %s", a.Tenant, a.Profile, want[a.Tenant])
		}
	}
	// Largest first in the layout.
	if plan.Layout[0] != "4g.40gb" {
		t.Fatalf("layout = %v", plan.Layout)
	}
}

func TestPackMIGDetectsInfeasibleLayout(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	// Two 4g instances can never place together.
	_, err := PackMIG(spec, []TenantDemand{
		{Name: "a", SMs: 50, MemBytes: simgpu.GB},
		{Name: "b", SMs: 50, MemBytes: simgpu.GB},
	})
	if !errors.Is(err, ErrUnpackable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPackMIGDemandTooLarge(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	if _, err := PackMIG(spec, []TenantDemand{{Name: "x", SMs: 99, MemBytes: 90 * simgpu.GB}}); !errors.Is(err, ErrUnpackable) {
		t.Fatalf("err = %v", err)
	}
}

func TestPackMIGNoMIGSupport(t *testing.T) {
	if _, err := PackMIG(simgpu.MI210(), []TenantDemand{{Name: "x", SMs: 10}}); !errors.Is(err, ErrUnpackable) {
		t.Fatalf("err = %v", err)
	}
}

// Property: whenever PackMIG succeeds, every tenant's profile covers
// its demand and the layout materializes on a real device.
func TestQuickPackMIGSound(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 4 {
			return true
		}
		var demands []TenantDemand
		for i, r := range raw {
			demands = append(demands, TenantDemand{
				Name:     string(rune('a' + i)),
				SMs:      int(r%60) + 1,
				MemBytes: int64(r%30+1) * simgpu.GB,
			})
		}
		plan, err := PackMIG(spec, demands)
		if err != nil {
			return true // infeasible inputs are allowed to fail
		}
		profByName := map[string]simgpu.MIGProfile{}
		for _, p := range simgpu.MIGProfilesFor(spec) {
			profByName[p.Name] = p
		}
		for i, a := range plan.Assignments {
			p := profByName[a.Profile]
			if p.Slices*spec.SMsPerSlice < demands[i].SMs || p.MemBytes < demands[i].MemBytes {
				return false
			}
		}
		return validateLayout(spec, plan.Layout) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
