// Package rightsize implements the paper's second future-work item
// (§7): estimating how much GPU an application actually needs, so a
// partition (MPS percentage or MIG profile) can be sized to it.
//
// Two estimators are provided:
//
//   - measurement-based: sweep a workload across SM budgets (the
//     experiment behind Fig. 2) and find the knee of the latency
//     curve;
//   - static: predict the same curve analytically from the workload's
//     kernel stream (the paper's "hints ... based on static analysis
//     of applications").
package rightsize

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/harness"
	"repro/internal/simgpu"
)

// ErrEmptyCurve is returned when no measurements are available.
var ErrEmptyCurve = errors.New("rightsize: empty curve")

// Point is one measurement: latency at an SM budget.
type Point struct {
	// SMs is the SM budget the workload ran under.
	SMs int
	// Percent is the MPS percentage producing that budget (0 if the
	// point was built directly from SMs).
	Percent int
	// Latency is the measured (or predicted) workload latency.
	Latency time.Duration
}

// Curve is a latency-vs-SMs profile, kept sorted by SMs.
type Curve []Point

// Sort orders the curve by SM budget.
func (c Curve) Sort() {
	sort.Slice(c, func(i, j int) bool { return c[i].SMs < c[j].SMs })
}

// Min returns the lowest latency on the curve.
func (c Curve) Min() time.Duration {
	best := time.Duration(math.MaxInt64)
	for _, p := range c {
		if p.Latency < best {
			best = p.Latency
		}
	}
	return best
}

// Knee returns the smallest SM budget whose latency is within
// tolerance (e.g. 0.05 = 5%) of the curve's best latency — the
// paper's "does not benefit from more SMs even if they are available"
// threshold.
func Knee(c Curve, tolerance float64) (Point, error) {
	if len(c) == 0 {
		return Point{}, ErrEmptyCurve
	}
	c.Sort()
	best := float64(c.Min())
	for _, p := range c {
		if float64(p.Latency) <= best*(1+tolerance) {
			return p, nil
		}
	}
	return c[len(c)-1], nil
}

// Sweep measures latency at each percentage via the caller-provided
// probe (typically: build a fresh simulation, run the workload under
// that MPS cap, return its latency). Each probe owns a fresh
// simulation, so the points are measured concurrently; the measure
// function must therefore not share mutable state across calls.
func Sweep(deviceSMs int, percents []int, measure func(pct int) (time.Duration, error)) (Curve, error) {
	for _, pct := range percents {
		if pct < 1 || pct > 100 {
			return nil, fmt.Errorf("rightsize: percentage %d out of range", pct)
		}
	}
	points, err := harness.Map(len(percents), func(i int) (Point, error) {
		pct := percents[i]
		lat, err := measure(pct)
		if err != nil {
			return Point{}, fmt.Errorf("rightsize: measuring %d%%: %w", pct, err)
		}
		return Point{
			SMs:     smsForPercent(deviceSMs, pct),
			Percent: pct,
			Latency: lat,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	curve := Curve(points)
	curve.Sort()
	return curve, nil
}

func smsForPercent(deviceSMs, pct int) int {
	if pct >= 100 {
		return deviceSMs
	}
	return int(math.Ceil(float64(pct) / 100 * float64(deviceSMs)))
}

// Recommendation is a right-sizing decision for one workload.
type Recommendation struct {
	// KneeSMs is the saturation point.
	KneeSMs int
	// KneeLatency is the latency there.
	KneeLatency time.Duration
	// MPSPercent is the smallest percentage granting KneeSMs.
	MPSPercent int
	// MIGProfile is the smallest profile with enough SMs and memory
	// (empty when the device has no MIG or nothing fits).
	MIGProfile string
	// TenantsPerGPU is how many such partitions fit compute-wise
	// under MPS.
	TenantsPerGPU int
}

// Recommend derives partition choices from a measured curve.
func Recommend(spec simgpu.DeviceSpec, c Curve, tolerance float64, memNeeded int64) (Recommendation, error) {
	knee, err := Knee(c, tolerance)
	if err != nil {
		return Recommendation{}, err
	}
	pct := int(math.Ceil(float64(knee.SMs) / float64(spec.SMs) * 100))
	if pct > 100 {
		pct = 100
	}
	rec := Recommendation{
		KneeSMs:     knee.SMs,
		KneeLatency: knee.Latency,
		MPSPercent:  pct,
		TenantsPerGPU: func() int {
			if knee.SMs <= 0 {
				return 1
			}
			n := spec.SMs / knee.SMs
			if n < 1 {
				n = 1
			}
			return n
		}(),
	}
	for _, prof := range simgpu.MIGProfilesFor(spec) { // ordered small→large
		if prof.Slices*spec.SMsPerSlice >= knee.SMs && prof.MemBytes >= memNeeded {
			rec.MIGProfile = prof.Name
			break
		}
	}
	return rec, nil
}

// PredictCurve statically estimates the latency-vs-SMs curve of a
// kernel stream on the given device: for each SM budget, sum each
// kernel's roofline duration. This is the "static analysis" tool — no
// simulation run needed.
func PredictCurve(spec simgpu.DeviceSpec, kernels []simgpu.Kernel, budgets []int) Curve {
	perSM := spec.PerSMFLOPS()
	var curve Curve
	for _, sms := range budgets {
		if sms < 1 {
			sms = 1
		}
		var total float64
		for _, k := range kernels {
			eff := float64(sms)
			if k.MaxSMs > 0 && float64(k.MaxSMs) < eff {
				eff = float64(k.MaxSMs)
			}
			var compute, mem float64
			if k.FLOPs > 0 {
				compute = k.FLOPs / (eff * perSM)
			}
			if k.Bytes > 0 {
				mem = k.Bytes / spec.MemBW
			}
			total += k.Overhead.Seconds() + math.Max(compute, mem)
		}
		curve = append(curve, Point{SMs: sms, Latency: time.Duration(total * float64(time.Second))})
	}
	curve.Sort()
	return curve
}

// DemandSMs is the cheapest static hint: the largest per-kernel
// parallelism bound, weighted by where the time goes — kernels
// covering the top `coverage` fraction of total duration at full
// budget determine the demand.
func DemandSMs(spec simgpu.DeviceSpec, kernels []simgpu.Kernel, coverage float64) int {
	if len(kernels) == 0 {
		return 1
	}
	perSM := spec.PerSMFLOPS()
	type kd struct {
		maxSMs int
		dur    float64
	}
	var items []kd
	var total float64
	for _, k := range kernels {
		eff := float64(spec.SMs)
		if k.MaxSMs > 0 && float64(k.MaxSMs) < eff {
			eff = float64(k.MaxSMs)
		}
		var compute, mem float64
		if k.FLOPs > 0 {
			compute = k.FLOPs / (eff * perSM)
		}
		if k.Bytes > 0 {
			mem = k.Bytes / spec.MemBW
		}
		d := k.Overhead.Seconds() + math.Max(compute, mem)
		m := k.MaxSMs
		if m <= 0 || m > spec.SMs {
			m = spec.SMs
		}
		items = append(items, kd{maxSMs: m, dur: d})
		total += d
	}
	// Take the duration-weighted demand: smallest S such that kernels
	// with maxSMs <= S cover at least `coverage` of total time.
	sort.Slice(items, func(i, j int) bool { return items[i].maxSMs < items[j].maxSMs })
	var acc float64
	for _, it := range items {
		acc += it.dur
		if acc >= coverage*total {
			return it.maxSMs
		}
	}
	return items[len(items)-1].maxSMs
}
