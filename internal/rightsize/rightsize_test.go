package rightsize

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/devent"
	"repro/internal/llm"
	"repro/internal/simgpu"
)

func mkCurve(points ...Point) Curve { return Curve(points) }

func TestKneeFindsSaturation(t *testing.T) {
	c := mkCurve(
		Point{SMs: 8, Latency: 12 * time.Second},
		Point{SMs: 16, Latency: 6 * time.Second},
		Point{SMs: 22, Latency: 4700 * time.Millisecond},
		Point{SMs: 54, Latency: 4600 * time.Millisecond},
		Point{SMs: 108, Latency: 4550 * time.Millisecond},
	)
	knee, err := Knee(c, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if knee.SMs != 22 {
		t.Fatalf("knee = %+v", knee)
	}
}

func TestKneeEmptyAndTight(t *testing.T) {
	if _, err := Knee(nil, 0.05); err == nil {
		t.Fatal("empty curve accepted")
	}
	// With zero tolerance the knee is the minimum itself.
	c := mkCurve(Point{SMs: 10, Latency: 2 * time.Second}, Point{SMs: 20, Latency: time.Second})
	knee, _ := Knee(c, 0)
	if knee.SMs != 20 {
		t.Fatalf("knee = %+v", knee)
	}
}

// End-to-end: sweep the calibrated LLaMa-7B engine and recover the
// paper's ~20-SM saturation point.
func TestSweepLLaMaFindsTwentySMKnee(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	measure := func(pct int) (time.Duration, error) {
		env := devent.NewEnv()
		dev, err := simgpu.NewDevice(env, "gpu0", spec)
		if err != nil {
			return 0, err
		}
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			return 0, err
		}
		var lat time.Duration
		var runErr error
		env.Spawn("probe", func(p *devent.Proc) {
			ctx, err := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: pct})
			if err != nil {
				runErr = err
				return
			}
			e := llm.New(llm.LLaMa27B())
			if err := e.Load(p, []*simgpu.Context{ctx}, spec.HostLoadBW); err != nil {
				runErr = err
				return
			}
			c, err := e.Complete(p, 20, 20)
			if err != nil {
				runErr = err
				return
			}
			lat = c.Latency
		})
		if err := env.Run(); err != nil {
			return 0, err
		}
		return lat, runErr
	}
	curve, err := Sweep(spec.SMs, []int{5, 10, 15, 19, 25, 50, 100}, measure)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recommend(spec, curve, 0.05, llm.LLaMa27B().FootprintBytes())
	if err != nil {
		t.Fatal(err)
	}
	// Knee at ≈20 SMs (the 19% point = 21 SMs).
	if rec.KneeSMs < 18 || rec.KneeSMs > 28 {
		t.Fatalf("knee = %d SMs", rec.KneeSMs)
	}
	if rec.MPSPercent < 17 || rec.MPSPercent > 26 {
		t.Fatalf("MPS%% = %d", rec.MPSPercent)
	}
	// Smallest MIG profile with ≥knee SMs and ≥17.5 GB: 2g.20gb
	// (28 SMs, 20 GB).
	if rec.MIGProfile != "2g.20gb" {
		t.Fatalf("MIG profile = %s", rec.MIGProfile)
	}
	if rec.TenantsPerGPU < 3 {
		t.Fatalf("tenants = %d", rec.TenantsPerGPU)
	}
}

func TestSweepRejectsBadPercent(t *testing.T) {
	if _, err := Sweep(108, []int{0}, nil); err == nil {
		t.Fatal("pct 0 accepted")
	}
	if _, err := Sweep(108, []int{101}, nil); err == nil {
		t.Fatal("pct 101 accepted")
	}
}

func TestPredictCurveMatchesRooflineShape(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	kernels := []simgpu.Kernel{
		{FLOPs: spec.PerSMFLOPS() * 20, MaxSMs: 20},    // 1 s at ≥20 SMs
		{FLOPs: spec.PerSMFLOPS() * 5, MaxSMs: 0},      // parallelizes fully
		{Bytes: spec.MemBW / 2, Overhead: time.Second}, // memory + overhead
	}
	curve := PredictCurve(spec, kernels, []int{5, 10, 20, 54, 108})
	if len(curve) != 5 {
		t.Fatalf("curve = %v", curve)
	}
	// Monotone non-increasing in SMs.
	for i := 1; i < len(curve); i++ {
		if curve[i].Latency > curve[i-1].Latency {
			t.Fatalf("not monotone: %v", curve)
		}
	}
	// At 5 SMs the bounded kernel takes 4 s; at 20+ it takes 1 s.
	if curve[0].Latency < curve[2].Latency+2*time.Second {
		t.Fatalf("low-budget penalty missing: %v", curve)
	}
}

func TestDemandSMsWeightedByDuration(t *testing.T) {
	spec := simgpu.A100SXM480GB()
	perSM := spec.PerSMFLOPS()
	kernels := []simgpu.Kernel{
		// 90% of time in 20-SM kernels.
		{FLOPs: perSM * 20 * 9, MaxSMs: 20},
		// 10% in a fully parallel kernel.
		{FLOPs: perSM * 108, MaxSMs: 0},
	}
	if got := DemandSMs(spec, kernels, 0.85); got != 20 {
		t.Fatalf("demand = %d", got)
	}
	// Demanding full coverage pulls in the unbounded kernel.
	if got := DemandSMs(spec, kernels, 1.0); got != spec.SMs {
		t.Fatalf("full-coverage demand = %d", got)
	}
	if got := DemandSMs(spec, nil, 0.9); got != 1 {
		t.Fatalf("empty demand = %d", got)
	}
}

// Property: the knee never exceeds the largest budget and its latency
// is within tolerance of the minimum.
func TestQuickKneeInvariant(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var c Curve
		for i, r := range raw {
			c = append(c, Point{SMs: i + 1, Latency: time.Duration(r+1) * time.Millisecond})
		}
		knee, err := Knee(c, 0.1)
		if err != nil {
			return false
		}
		if knee.SMs < 1 || knee.SMs > len(raw) {
			return false
		}
		return float64(knee.Latency) <= 1.1*float64(c.Min())+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
