package simgpu

import (
	"testing"
	"time"

	"repro/internal/devent"
)

// BenchmarkMaxMinFair measures the allocator on a contended set.
func BenchmarkMaxMinFair(b *testing.B) {
	demands := make([]float64, 32)
	for i := range demands {
		demands[i] = float64(i%7) * 13
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxMinFair(100, demands)
	}
}

// BenchmarkSpatialContention measures the processor-sharing engine
// under heavy churn: 8 tenants × many kernels with constant
// re-evaluation.
func BenchmarkSpatialContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := devent.NewEnv()
		dev, err := NewDevice(env, "gpu0", testSpecBench())
		if err != nil {
			b.Fatal(err)
		}
		dev.SetPolicy(PolicySpatial)
		for t := 0; t < 8; t++ {
			env.Spawn("tenant", func(p *devent.Proc) {
				ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
				for k := 0; k < 50; k++ {
					if _, err := ctx.Run(p, Kernel{FLOPs: 25, MaxSMs: 30}); err != nil {
						env.Fail(err)
						return
					}
				}
			})
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimeshareChurn measures the round-robin path.
func BenchmarkTimeshareChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := devent.NewEnv()
		dev, _ := NewDevice(env, "gpu0", testSpecBench())
		for t := 0; t < 4; t++ {
			env.Spawn("tenant", func(p *devent.Proc) {
				ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
				for k := 0; k < 100; k++ {
					ctx.Run(p, Kernel{FLOPs: 10})
				}
			})
		}
		if err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func testSpecBench() DeviceSpec {
	return DeviceSpec{
		Name: "bench", SMs: 100, MemBytes: 1 << 40, FP32FLOPS: 100,
		MemBW: 100, PCIeBW: 100, ContextSwitch: time.Microsecond,
	}
}
