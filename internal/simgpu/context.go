package simgpu

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"time"

	"repro/internal/devent"
	"repro/internal/obs"
)

// ErrDestroyed is returned for operations on a destroyed context.
var ErrDestroyed = errors.New("simgpu: context destroyed")

// ErrContextLost is the failure delivered when a context is torn down
// by an injected hardware fault (uncorrectable ECC error, Xid-style
// channel loss): the CUDA analogue of CUDA_ERROR_ECC_UNCORRECTABLE,
// after which every operation on the context fails and the client
// process must recreate it. It is retriable at the task level — a
// fresh context on the same or another worker can redo the work.
var ErrContextLost = errors.New("simgpu: context lost (uncorrectable ECC error)")

// ContextOpts configures a GPU context (one per client process).
type ContextOpts struct {
	// Name labels the context in traces; empty gets a generated name.
	Name string
	// SMPercent is the CUDA_MPS_ACTIVE_THREAD_PERCENTAGE-style cap on
	// the fraction of the domain's SMs this context may use; 0 or 100
	// means unrestricted. Only meaningful under PolicySpatial.
	SMPercent int
	// Group names the vGPU VM this context belongs to (PolicyVGPU).
	Group string
	// SkipInit suppresses the context-initialization delay (useful in
	// unit tests; real cold starts should pay it).
	SkipInit bool
}

// Context is a client process's handle on a compute domain: a single
// in-order stream of kernels plus its memory allocations.
type Context struct {
	name      string
	dom       *domain
	mem       *MemPool
	pcieBW    float64
	devBW     float64
	smPct     int
	group     string
	queue     []*launched
	owned     []*Segment
	attached  []*Segment
	destroyed bool
	createdAt time.Duration

	// traceParent is the span kernel spans launched through this
	// context hang under (the worker's current run span).
	traceParent obs.SpanID
}

// SetTraceParent parents subsequent kernel spans under the given span
// (e.g. the htex run span of the invocation driving this context).
func (c *Context) SetTraceParent(id obs.SpanID) { c.traceParent = id }

// Name returns the context name.
func (c *Context) Name() string { return c.name }

// CreatedAt returns the virtual time the context finished initializing.
func (c *Context) CreatedAt() time.Duration { return c.createdAt }

// SMPercent returns the context's SM cap percentage (0 = unlimited).
func (c *Context) SMPercent() int { return c.smPct }

// smCap converts the percentage to an SM count (0 = unlimited). CUDA
// MPS rounds the portion up to a whole SM.
func (c *Context) smCap() int {
	if c.smPct <= 0 || c.smPct >= 100 {
		return 0
	}
	return int(math.Ceil(float64(c.smPct) / 100 * float64(c.dom.sms)))
}

// Launch enqueues a kernel on the context's stream, returning its
// completion event. The event fires with a KernelRecord or fails with
// ErrAborted if the context is destroyed first.
func (c *Context) Launch(k Kernel) *devent.Event {
	if c.destroyed {
		ev := c.dom.env.NewNamedEvent("kernel:" + k.Name)
		ev.Fail(ErrDestroyed)
		return ev
	}
	return c.dom.launch(c, k)
}

// Run launches k and blocks the proc until it completes.
func (c *Context) Run(p *devent.Proc, k Kernel) (KernelRecord, error) {
	v, err := p.Wait(c.Launch(k))
	if err != nil {
		return KernelRecord{}, err
	}
	return v.(KernelRecord), nil
}

// RunAll launches the kernels back-to-back on the stream (so they
// pipeline in order) and waits for the last; the first error aborts
// the wait.
func (c *Context) RunAll(p *devent.Proc, ks []Kernel) error {
	if len(ks) == 0 {
		return nil
	}
	evs := make([]*devent.Event, len(ks))
	for i, k := range ks {
		evs[i] = c.Launch(k)
	}
	for _, ev := range evs {
		if _, err := p.Wait(ev); err != nil {
			return err
		}
	}
	return nil
}

// Alloc reserves device memory owned by this context; it is freed on
// Destroy. Under MPS all contexts share one pool (no isolation); under
// MIG the pool is the instance's.
func (c *Context) Alloc(name string, bytes int64) (*Segment, error) {
	if c.destroyed {
		return nil, ErrDestroyed
	}
	seg, err := c.mem.Alloc(prefixed(c.name, name), bytes)
	if err != nil {
		return nil, err
	}
	c.owned = append(c.owned, seg)
	return seg, nil
}

// Attach adds a reference to a shared segment (e.g. a cached model);
// the reference is released on Destroy.
func (c *Context) Attach(seg *Segment) {
	seg.Retain()
	c.attached = append(c.attached, seg)
}

// Pool returns the memory pool the context allocates from.
func (c *Context) Pool() *MemPool { return c.mem }

// SpecView is the subset of device characteristics a workload needs
// to size kernels for a context. MemBW is always the full parent
// device's bandwidth, even for MIG-instance contexts — workloads
// calibrate against whole-device numbers and the scheduler applies
// the instance's share.
type SpecView struct {
	// PerSMFLOPS is single-precision throughput per SM.
	PerSMFLOPS float64
	// MemBW is the full parent device's HBM bandwidth.
	MemBW float64
	// DomainSMs is the SM count of the context's compute domain (the
	// whole device, or the MIG instance).
	DomainSMs int
	// DomainMemBW is the bandwidth of the context's domain.
	DomainMemBW float64
}

// SpecView returns the context's device characteristics.
func (c *Context) SpecView() SpecView {
	return SpecView{
		PerSMFLOPS:  c.dom.perSM,
		MemBW:       c.devBW,
		DomainSMs:   c.dom.sms,
		DomainMemBW: c.dom.bw,
	}
}

// CopyH2D blocks the proc for a host-to-device transfer of the given
// size over PCIe.
func (c *Context) CopyH2D(p *devent.Proc, bytes int64) {
	c.transfer(p, bytes, c.pcieBW, "pcie")
}

// Transfer blocks the proc for bytes moved at bw bytes/s (callers pick
// the path: PCIe, NVLink, or the end-to-end model-loading path).
func (c *Context) Transfer(p *devent.Proc, bytes int64, bw float64) {
	c.transfer(p, bytes, bw, "")
}

// TransferTagged is Transfer with a workload tag recorded on the
// transfer span; "weights" marks model-weight loads so the attribution
// engine can separate weight loading from other PCIe traffic.
func (c *Context) TransferTagged(p *devent.Proc, bytes int64, bw float64, tag string) {
	c.transfer(p, bytes, bw, tag)
}

func (c *Context) transfer(p *devent.Proc, bytes int64, bw float64, tag string) {
	if bytes <= 0 || bw <= 0 {
		return
	}
	t0 := p.Now()
	p.Sleep(time.Duration(float64(bytes) / bw * float64(time.Second)))
	if c.dom.obs != nil {
		attrs := []obs.Attr{obs.String("bytes", strconv.FormatInt(bytes, 10))}
		if tag != "" {
			attrs = append(attrs, obs.String("tag", tag))
		}
		c.dom.obs.AddSpan("simgpu", "xfer", c.name, c.traceParent, t0, p.Now(), attrs...)
	}
}

// Pending returns the number of queued (incl. running) kernels.
func (c *Context) Pending() int { return len(c.queue) }

// Destroyed reports whether Destroy has been called.
func (c *Context) Destroyed() bool { return c.destroyed }

// Destroy aborts all queued kernels (their events fail with
// ErrAborted), frees owned memory, and releases shared attachments.
// This is the simulator's analogue of killing the client process —
// required by MPS to change a GPU percentage (paper §6).
func (c *Context) Destroy() { c.destroyWith(ErrAborted) }

// Fault destroys the context as a hardware fault would: queued and
// running kernels fail with err (ErrContextLost when err is nil)
// instead of the orderly ErrAborted, memory is freed, and the context
// leaves scheduling. Subsequent Launch/Alloc calls fail with
// ErrDestroyed, so the owning worker must open a fresh context.
func (c *Context) Fault(err error) {
	if err == nil {
		err = ErrContextLost
	}
	c.destroyWith(err)
}

func (c *Context) destroyWith(err error) {
	if c.destroyed {
		return
	}
	c.destroyed = true
	c.dom.abortContext(c, err)
	for _, seg := range c.owned {
		seg.Release()
	}
	c.owned = nil
	for _, seg := range c.attached {
		seg.Release()
	}
	c.attached = nil
}

func prefixed(ctx, name string) string {
	if name == "" {
		return ""
	}
	return fmt.Sprintf("%s/%s", ctx, name)
}
