package simgpu

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// ErrMIGMode is returned when an operation conflicts with the device's
// MIG mode (e.g. creating a plain context while MIG is enabled).
var ErrMIGMode = errors.New("simgpu: operation conflicts with MIG mode")

// ErrBusy is returned when a reconfiguration requires the device (or
// an instance) to be free of contexts first — the paper's "shut down
// all the applications" requirement.
var ErrBusy = errors.New("simgpu: device busy (destroy contexts first)")

// Device is one simulated GPU.
type Device struct {
	env        *devent.Env
	name       string
	spec       DeviceSpec
	root       *domain
	mem        *MemPool
	migEnabled bool
	instances  []*Instance
	nctx       int
	nInst      int
	onDone     func(KernelRecord)
	obsC       *obs.Collector
}

// NewDevice creates a device with time-sharing policy (the GPU
// default when no MPS daemon runs).
func NewDevice(env *devent.Env, name string, spec DeviceSpec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		env:  env,
		name: name,
		spec: spec,
		mem:  NewMemPool(name, spec.MemBytes),
	}
	d.root = newDomain(env, name, spec.SMs, spec.PerSMFLOPS(), spec.MemBW, spec.ContextSwitch)
	d.root.onDone = d.kernelDone
	return d, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Spec returns the hardware description.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Mem returns the device-wide memory pool (invalid to allocate from
// while MIG is enabled; instances have their own pools).
func (d *Device) Mem() *MemPool { return d.mem }

// Env returns the simulation environment.
func (d *Device) Env() *devent.Env { return d.env }

// OnKernelDone installs a hook receiving every completed or aborted
// kernel on the device, including MIG instances.
func (d *Device) OnKernelDone(fn func(KernelRecord)) { d.onDone = fn }

// SetCollector attaches a collector to every compute domain (root and
// MIG instances, current and future): kernels become spans, and busy
// SMs, queue depth, and context switches become per-domain metrics.
func (d *Device) SetCollector(c *obs.Collector) {
	d.obsC = c
	d.root.setCollector(c)
	for _, in := range d.instances {
		in.dom.setCollector(c)
	}
}

// ContextSwitches returns the total scheduling context switches across
// the root domain and all MIG instances (time-share penalties plus
// vGPU quantum rotations).
func (d *Device) ContextSwitches() int {
	n := d.root.switches
	for _, in := range d.instances {
		n += in.dom.switches
	}
	return n
}

func (d *Device) kernelDone(rec KernelRecord) {
	if d.onDone != nil {
		d.onDone(rec)
	}
}

// SetPolicy switches the whole-device sharing policy. Enabling
// PolicySpatial corresponds to starting nvidia-cuda-mps-control;
// PolicyTimeShare is the default. Fails with ErrMIGMode while MIG is
// enabled (instances schedule independently) and with ErrBusy while
// contexts exist (MPS must start before client processes).
func (d *Device) SetPolicy(p Policy) error {
	if d.migEnabled {
		return ErrMIGMode
	}
	if len(d.root.ctxs) > 0 {
		return ErrBusy
	}
	d.root.policy = p
	return nil
}

// Policy returns the whole-device sharing policy.
func (d *Device) Policy() Policy { return d.root.policy }

// SetVGPUQuantum sets the vGPU time-slice length (PolicyVGPU only).
func (d *Device) SetVGPUQuantum(q time.Duration) {
	if q > 0 {
		d.root.quantum = q
	}
}

// NewContext creates a client context on the whole device, paying the
// context-initialization cost unless opts.SkipInit. Fails with
// ErrMIGMode when MIG is enabled — clients must then target instances.
func (d *Device) NewContext(p *devent.Proc, opts ContextOpts) (*Context, error) {
	if d.migEnabled {
		return nil, ErrMIGMode
	}
	return d.newContextOn(p, d.root, d.mem, opts)
}

func (d *Device) newContextOn(p *devent.Proc, dom *domain, mem *MemPool, opts ContextOpts) (*Context, error) {
	if opts.SMPercent < 0 || opts.SMPercent > 100 {
		return nil, fmt.Errorf("simgpu: SMPercent %d out of range", opts.SMPercent)
	}
	if !opts.SkipInit && p != nil {
		p.Sleep(d.spec.ContextInit)
	}
	d.nctx++
	name := opts.Name
	if name == "" {
		name = fmt.Sprintf("%s/ctx%d", dom.name, d.nctx)
	}
	if opts.Group == "" {
		// Under vGPU every ungrouped context is its own VM; the other
		// policies ignore groups.
		opts.Group = name
	}
	c := &Context{
		name:      name,
		dom:       dom,
		mem:       mem,
		pcieBW:    d.spec.PCIeBW,
		devBW:     d.spec.MemBW,
		smPct:     opts.SMPercent,
		group:     opts.Group,
		createdAt: d.env.Now(),
	}
	dom.addContext(c)
	return c, nil
}

// Contexts returns the number of live contexts on the root domain.
func (d *Device) Contexts() int { return len(d.root.ctxs) }

// ContextNames lists every live context on the device — root domain
// first, then MIG instances in creation order — in creation order
// within each domain. The listing is deterministic, so a seeded fault
// injector picking a victim by index always picks the same one.
func (d *Device) ContextNames() []string {
	var names []string
	for _, c := range d.root.ctxs {
		names = append(names, c.name)
	}
	for _, in := range d.instances {
		for _, c := range in.dom.ctxs {
			names = append(names, c.name)
		}
	}
	return names
}

// InjectContextLoss destroys the named context as an uncorrectable
// ECC error would: its queued and running kernels fail with
// ErrContextLost and its memory is freed. It reports whether a live
// context with that name existed.
func (d *Device) InjectContextLoss(name string) bool {
	if c := d.findContext(name); c != nil {
		c.Fault(ErrContextLost)
		return true
	}
	return false
}

func (d *Device) findContext(name string) *Context {
	for _, c := range d.root.ctxs {
		if c.name == name {
			return c
		}
	}
	for _, in := range d.instances {
		for _, c := range in.dom.ctxs {
			if c.name == name {
				return c
			}
		}
	}
	return nil
}

// BusySeries returns the whole-device busy-SM step series (root
// domain; in MIG mode use per-instance series).
func (d *Device) BusySeries() *metrics.StepSeries { return d.root.busySeries() }

// Utilization returns mean busy-SM fraction over [from, to]. In MIG
// mode it aggregates instances weighted by their SM counts; slack SMs
// not covered by any instance count as idle.
func (d *Device) Utilization(from, to time.Duration) float64 {
	if !d.migEnabled {
		return d.root.utilization(from, to)
	}
	var busy float64
	for _, in := range d.instances {
		busy += in.dom.busy.Mean(from, to)
	}
	return busy / float64(d.spec.SMs)
}

// MIGEnabled reports whether the device is in MIG mode.
func (d *Device) MIGEnabled() bool { return d.migEnabled }

// Instances returns the live MIG instances in creation order.
func (d *Device) Instances() []*Instance {
	return append([]*Instance(nil), d.instances...)
}

// InstanceByUUID finds an instance (nil if absent).
func (d *Device) InstanceByUUID(uuid string) *Instance {
	for _, in := range d.instances {
		if in.uuid == uuid {
			return in
		}
	}
	return nil
}

// Reset models a full GPU reset: fails with ErrBusy if any context
// exists, otherwise blocks the proc for the reset time.
func (d *Device) Reset(p *devent.Proc) error {
	if len(d.root.ctxs) > 0 {
		return ErrBusy
	}
	for _, in := range d.instances {
		if len(in.dom.ctxs) > 0 {
			return ErrBusy
		}
	}
	if p != nil {
		p.Sleep(d.spec.ResetTime)
	}
	return nil
}
