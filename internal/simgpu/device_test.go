package simgpu

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/devent"
)

// testSpec gives easy arithmetic: 100 SMs at 1 FLOP/s each, 100 B/s of
// memory bandwidth, and no fixed overheads.
func testSpec() DeviceSpec {
	return DeviceSpec{
		Name:      "test",
		SMs:       100,
		MemBytes:  1000,
		FP32FLOPS: 100,
		MemBW:     100,
		PCIeBW:    100,
	}
}

func near(t *testing.T, got, want time.Duration) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > time.Microsecond {
		t.Fatalf("time = %v, want %v", got, want)
	}
}

func mustDevice(t *testing.T, env *devent.Env, spec DeviceSpec) *Device {
	t.Helper()
	d, err := NewDevice(env, "gpu0", spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func run(t *testing.T, env *devent.Env) {
	t.Helper()
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleKernelComputeBound(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	var end time.Duration
	env.Spawn("client", func(p *devent.Proc) {
		ctx, err := dev.NewContext(p, ContextOpts{SkipInit: true})
		if err != nil {
			t.Error(err)
			return
		}
		rec, err := ctx.Run(p, Kernel{Name: "k", FLOPs: 100})
		if err != nil {
			t.Error(err)
			return
		}
		end = rec.End
	})
	run(t, env)
	near(t, end, time.Second) // 100 FLOPs / (100 SMs × 1 FLOP/s)
}

func TestKernelMaxSMsBound(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("client", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		rec, err := ctx.Run(p, Kernel{FLOPs: 100, MaxSMs: 10})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End, 10*time.Second) // only 10 SMs usable
		if rec.SMs != 10 {
			t.Errorf("SMs = %v", rec.SMs)
		}
	})
	run(t, env)
}

func TestKernelMemoryBound(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("client", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		rec, err := ctx.Run(p, Kernel{FLOPs: 100, Bytes: 200})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End, 2*time.Second) // max(1s compute, 2s memory)
	})
	run(t, env)
}

func TestKernelLaunchOverhead(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("client", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		rec, err := ctx.Run(p, Kernel{FLOPs: 100, Overhead: 500 * time.Millisecond})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End, 1500*time.Millisecond)
	})
	run(t, env)
}

func TestEmptyKernelCompletesImmediately(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("client", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		rec, err := ctx.Run(p, Kernel{})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End, 0)
	})
	run(t, env)
}

func TestStreamSerializesKernels(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("client", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		ev1 := ctx.Launch(Kernel{FLOPs: 100})
		ev2 := ctx.Launch(Kernel{FLOPs: 100})
		v1, err1 := p.Wait(ev1)
		v2, err2 := p.Wait(ev2)
		if err1 != nil || err2 != nil {
			t.Error(err1, err2)
			return
		}
		near(t, v1.(KernelRecord).End, time.Second)
		near(t, v2.(KernelRecord).End, 2*time.Second)
	})
	run(t, env)
}

func TestTimeShareSerializesContexts(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	ends := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("client", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
			rec, err := ctx.Run(p, Kernel{FLOPs: 100, MaxSMs: 10})
			if err != nil {
				t.Error(err)
				return
			}
			ends[i] = rec.End
		})
	}
	run(t, env)
	// Each kernel could only use 10 SMs, but time-sharing still runs
	// them one at a time: 10 s + 10 s.
	lo, hi := ends[0], ends[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	near(t, lo, 10*time.Second)
	near(t, hi, 20*time.Second)
}

func TestTimeShareContextSwitchCost(t *testing.T) {
	spec := testSpec()
	spec.ContextSwitch = 100 * time.Millisecond
	env := devent.NewEnv()
	dev := mustDevice(t, env, spec)
	var last time.Duration
	for i := 0; i < 2; i++ {
		env.Spawn("client", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
			rec, err := ctx.Run(p, Kernel{FLOPs: 100})
			if err != nil {
				t.Error(err)
				return
			}
			if rec.End > last {
				last = rec.End
			}
		})
	}
	run(t, env)
	near(t, last, 2100*time.Millisecond) // 1s + switch + 1s
}

func TestSpatialConcurrentSmallKernels(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	if err := dev.SetPolicy(PolicySpatial); err != nil {
		t.Fatal(err)
	}
	var last time.Duration
	for i := 0; i < 2; i++ {
		env.Spawn("client", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
			rec, err := ctx.Run(p, Kernel{FLOPs: 50, MaxSMs: 50})
			if err != nil {
				t.Error(err)
				return
			}
			if rec.End > last {
				last = rec.End
			}
		})
	}
	run(t, env)
	near(t, last, time.Second) // both fit side by side: 50 FLOPs / 50 SMs
}

func TestSpatialContendedFairSharing(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicySpatial)
	var last time.Duration
	for i := 0; i < 2; i++ {
		env.Spawn("client", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
			rec, err := ctx.Run(p, Kernel{FLOPs: 100})
			if err != nil {
				t.Error(err)
				return
			}
			if rec.End > last {
				last = rec.End
			}
		})
	}
	run(t, env)
	near(t, last, 2*time.Second) // 50 SMs each → 2 s each, concurrently
}

func TestSpatialSMPercentCap(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicySpatial)
	env.Spawn("client", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true, SMPercent: 25})
		rec, err := ctx.Run(p, Kernel{FLOPs: 100})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End, 4*time.Second) // capped at 25 SMs
	})
	run(t, env)
}

func TestProcessorSharingReevaluation(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicySpatial)
	var endA, endB time.Duration
	env.Spawn("a", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		rec, err := ctx.Run(p, Kernel{FLOPs: 200})
		if err != nil {
			t.Error(err)
			return
		}
		endA = rec.End
	})
	env.Spawn("b", func(p *devent.Proc) {
		p.Sleep(time.Second)
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		rec, err := ctx.Run(p, Kernel{FLOPs: 100})
		if err != nil {
			t.Error(err)
			return
		}
		endB = rec.End
	})
	run(t, env)
	// A runs alone 0–1 s (100 of 200 FLOPs done), then shares 50/50:
	// A's remaining 100 FLOPs at 50 SM → finishes at 3 s. B's 100
	// FLOPs at 50 SM → also 3 s.
	near(t, endA, 3*time.Second)
	near(t, endB, 3*time.Second)
}

func TestBandwidthContention(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicySpatial)
	var last time.Duration
	for i := 0; i < 2; i++ {
		env.Spawn("client", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
			// Memory-bound: 1 FLOP, 100 bytes. Solo: 1 s at 100 B/s.
			rec, err := ctx.Run(p, Kernel{FLOPs: 1, Bytes: 100, MaxSMs: 10})
			if err != nil {
				t.Error(err)
				return
			}
			if rec.End > last {
				last = rec.End
			}
		})
	}
	run(t, env)
	near(t, last, 2*time.Second) // bandwidth halves → 2 s each
}

func TestDestroyAbortsKernels(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	var err1 error
	var ctx *Context
	env.Spawn("victim", func(p *devent.Proc) {
		ctx, _ = dev.NewContext(p, ContextOpts{SkipInit: true})
		_, err1 = ctx.Run(p, Kernel{FLOPs: 1000})
	})
	env.Spawn("killer", func(p *devent.Proc) {
		p.Sleep(time.Second)
		ctx.Destroy()
	})
	run(t, env)
	if !errors.Is(err1, ErrAborted) {
		t.Fatalf("err = %v", err1)
	}
	if dev.Contexts() != 0 {
		t.Fatalf("contexts = %d", dev.Contexts())
	}
}

func TestDestroyFreesMemoryAndLaunchFails(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		if _, err := ctx.Alloc("weights", 500); err != nil {
			t.Error(err)
			return
		}
		ctx.Destroy()
		if dev.Mem().Used() != 0 {
			t.Errorf("memory leak: %d", dev.Mem().Used())
		}
		if _, err := p.Wait(ctx.Launch(Kernel{FLOPs: 1})); !errors.Is(err, ErrDestroyed) {
			t.Errorf("launch after destroy: %v", err)
		}
		if _, err := ctx.Alloc("x", 1); !errors.Is(err, ErrDestroyed) {
			t.Errorf("alloc after destroy: %v", err)
		}
	})
	run(t, env)
}

func TestContextInitCost(t *testing.T) {
	spec := testSpec()
	spec.ContextInit = 800 * time.Millisecond
	env := devent.NewEnv()
	dev := mustDevice(t, env, spec)
	env.Spawn("c", func(p *devent.Proc) {
		ctx, err := dev.NewContext(p, ContextOpts{})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, ctx.CreatedAt(), 800*time.Millisecond)
	})
	run(t, env)
}

func TestSetPolicyRequiresNoContexts(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		if err := dev.SetPolicy(PolicySpatial); !errors.Is(err, ErrBusy) {
			t.Errorf("SetPolicy with live context: %v", err)
		}
		ctx.Destroy()
		if err := dev.SetPolicy(PolicySpatial); err != nil {
			t.Errorf("SetPolicy after destroy: %v", err)
		}
	})
	run(t, env)
}

func TestUtilizationAccounting(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		ctx.Run(p, Kernel{FLOPs: 100, MaxSMs: 50}) // 2 s at 50 SMs
	})
	run(t, env)
	got := dev.Utilization(0, 2*time.Second)
	if got < 0.49 || got > 0.51 {
		t.Fatalf("utilization = %v", got)
	}
	// Over a 4 s window the device idles half the time.
	got = dev.Utilization(0, 4*time.Second)
	if got < 0.24 || got > 0.26 {
		t.Fatalf("windowed utilization = %v", got)
	}
}

func TestVGPUTimeSlicing(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	if err := dev.SetPolicy(PolicyVGPU); err != nil {
		t.Fatal(err)
	}
	dev.SetVGPUQuantum(100 * time.Millisecond)
	var last time.Duration
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("vm", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true, Group: fmt.Sprintf("vm%d", i)})
			rec, err := ctx.Run(p, Kernel{FLOPs: 100})
			if err != nil {
				t.Error(err)
				return
			}
			if rec.End > last {
				last = rec.End
			}
		})
	}
	run(t, env)
	// Strict alternation: 2 s of total work serialized ⇒ last finishes
	// at ≈2 s (quantum boundaries may add one slice of slack).
	if last < 1900*time.Millisecond || last > 2200*time.Millisecond {
		t.Fatalf("last = %v", last)
	}
}

func TestCopyH2D(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		ctx.CopyH2D(p, 200) // 200 B at 100 B/s
		near(t, p.Now(), 2*time.Second)
	})
	run(t, env)
}

func TestOnKernelDoneHook(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	var recs []KernelRecord
	dev.OnKernelDone(func(r KernelRecord) { recs = append(recs, r) })
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		ctx.Run(p, Kernel{Name: "k1", FLOPs: 100, Tag: "train"})
	})
	run(t, env)
	if len(recs) != 1 || recs[0].Kernel.Name != "k1" || recs[0].Kernel.Tag != "train" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestDeterministicScheduling(t *testing.T) {
	runOnce := func() string {
		env := devent.NewEnv()
		dev := mustDevice(t, env, testSpec())
		dev.SetPolicy(PolicySpatial)
		var out string
		for i := 0; i < 5; i++ {
			i := i
			env.Spawn("c", func(p *devent.Proc) {
				p.Sleep(time.Duration(i*137) * time.Millisecond)
				ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
				rec, err := ctx.Run(p, Kernel{FLOPs: float64(50 + i*30), MaxSMs: 40})
				if err != nil {
					t.Error(err)
					return
				}
				out += fmt.Sprintf("%d:%v;", i, rec.End)
			})
		}
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}
