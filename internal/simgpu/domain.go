package simgpu

import (
	"math"
	"time"

	"repro/internal/devent"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Policy selects how concurrent contexts share a compute domain.
type Policy int

const (
	// PolicyTimeShare is the GPU default without MPS: kernels from
	// different contexts serialize, each using the whole domain, with
	// a context-switch penalty between contexts (Table 1 row 1).
	PolicyTimeShare Policy = iota
	// PolicySpatial models CUDA MPS: stream-head kernels from all
	// contexts run concurrently, sharing SMs (subject to per-context
	// percentage caps) and memory bandwidth (Table 1 rows 2–3).
	PolicySpatial
	// PolicyVGPU models vGPU-style scheduling: context groups (VMs)
	// take strict time-sliced turns; within the active group kernels
	// run spatially (Table 1 row 5).
	PolicyVGPU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyTimeShare:
		return "timeshare"
	case PolicySpatial:
		return "spatial"
	case PolicyVGPU:
		return "vgpu"
	default:
		return "unknown"
	}
}

// domain is one independently scheduled compute partition: the whole
// GPU in non-MIG mode, or a single MIG instance. It implements
// processor sharing: whenever the running set changes, each kernel's
// remaining fraction is carried into a newly computed duration.
type domain struct {
	env        *devent.Env
	name       string
	sms        int
	perSM      float64
	bw         float64
	switchCost time.Duration
	policy     Policy
	quantum    time.Duration
	ctxs       []*Context
	lastCtx    *Context
	groups     []string
	activeGrp  int
	rotT       *devent.Timer
	busy       metrics.StepSeries
	onDone     func(KernelRecord)

	// Observability: kernel spans and per-domain gauges flow into obs
	// when a collector is attached; everything below is nil-safe.
	obs      *obs.Collector
	gBusy    *obs.Gauge
	gQueue   *obs.Gauge
	cSwitch  *obs.Counter
	cDone    *obs.Counter
	cAbort   *obs.Counter
	switches int
	depth    int
}

// setCollector attaches a collector and resolves the domain's
// instruments once, so the scheduler hot path pays only nil checks.
func (d *domain) setCollector(c *obs.Collector) {
	d.obs = c
	m := c.Metrics()
	l := obs.L("domain", d.name)
	d.gBusy = m.Gauge("simgpu_domain_busy_sms", l)
	d.gQueue = m.Gauge("simgpu_domain_queue_depth", l)
	d.cSwitch = m.Counter("simgpu_domain_context_switches_total", l)
	d.cDone = m.Counter("simgpu_kernels_completed_total", l)
	d.cAbort = m.Counter("simgpu_kernels_aborted_total", l)
}

func newDomain(env *devent.Env, name string, sms int, perSM, bw float64, switchCost time.Duration) *domain {
	return &domain{
		env:        env,
		name:       name,
		sms:        sms,
		perSM:      perSM,
		bw:         bw,
		switchCost: switchCost,
		policy:     PolicyTimeShare,
		quantum:    2 * time.Millisecond,
	}
}

func (d *domain) addContext(c *Context) {
	d.ctxs = append(d.ctxs, c)
	if c.group != "" {
		found := false
		for _, g := range d.groups {
			if g == c.group {
				found = true
				break
			}
		}
		if !found {
			d.groups = append(d.groups, c.group)
		}
	}
}

func (d *domain) removeContext(c *Context) {
	for i, x := range d.ctxs {
		if x == c {
			d.ctxs = append(d.ctxs[:i], d.ctxs[i+1:]...)
			break
		}
	}
	if d.lastCtx == c {
		d.lastCtx = nil
	}
}

// launch enqueues a kernel on c's stream and returns its completion
// event (fired with a KernelRecord, or failed with ErrAborted).
func (d *domain) launch(c *Context, k Kernel) *devent.Event {
	l := &launched{
		k:       k,
		ctx:     c,
		done:    d.env.NewNamedEvent("kernel:" + k.Name),
		enqueue: d.env.Now(),
		frac:    1,
	}
	c.queue = append(c.queue, l)
	d.depth++
	d.gQueue.Set(float64(d.depth))
	if len(c.queue) == 1 {
		d.reevaluate()
	}
	return l.done
}

// head returns c's runnable stream head, or nil.
func (c *Context) head() *launched {
	if len(c.queue) == 0 {
		return nil
	}
	return c.queue[0]
}

func (c *Context) popHead(l *launched) {
	if len(c.queue) > 0 && c.queue[0] == l {
		c.queue = c.queue[1:]
	}
}

// reevaluate recomputes the running set, SM and bandwidth allocations,
// and completion timers. It must be called whenever stream heads,
// contexts, or the vGPU active group change.
func (d *domain) reevaluate() {
	now := d.env.Now()
	// Phase 1: bank progress for everything currently running and
	// cancel its completion timer.
	for _, c := range d.ctxs {
		l := c.head()
		if l == nil || !l.running {
			continue
		}
		if l.finishT != nil {
			l.finishT.Cancel()
			l.finishT = nil
		}
		if l.dur > 0 {
			elapsed := now - l.lastEv
			l.frac -= float64(elapsed) / float64(l.dur)
			if l.frac < 0 {
				l.frac = 0
			}
		}
		l.lastEv = now
		l.running = false
	}
	// Phase 2: policy selects the new running set.
	sel := d.selectRunnable()
	// Phase 3: allocate SMs max–min fairly among demands.
	smDem := make([]float64, len(sel))
	for i, l := range sel {
		smDem[i] = d.smDemand(l)
	}
	smAlloc := MaxMinFair(float64(d.sms), smDem)
	// Phase 4: bandwidth demands given SM allocations, then max–min.
	bwDem := make([]float64, len(sel))
	for i, l := range sel {
		if l.k.Bytes <= 0 {
			continue
		}
		ct := 0.0
		if smAlloc[i] > 0 && l.k.FLOPs > 0 {
			ct = l.k.FLOPs / (smAlloc[i] * d.perSM)
		}
		if ct <= 0 {
			bwDem[i] = d.bw
		} else {
			bwDem[i] = math.Min(d.bw, l.k.Bytes/ct)
		}
	}
	bwAlloc := MaxMinFair(d.bw, bwDem)
	// Phase 5: start/resume kernels and schedule completions.
	total := 0.0
	for i, l := range sel {
		l.running = true
		if !l.started {
			if d.policy == PolicyTimeShare && d.lastCtx != nil && l.ctx != d.lastCtx {
				l.extra = d.switchCost
				d.switches++
				d.cSwitch.Inc()
			}
			l.started = true
			l.start = now
		}
		l.smAlloc = smAlloc[i]
		l.dur = d.soloDuration(l, smAlloc[i], bwAlloc[i])
		l.lastEv = now
		rem := time.Duration(l.frac * float64(l.dur))
		ll := l
		l.finishT = d.env.Schedule(rem, func() { d.complete(ll) })
		total += smAlloc[i]
	}
	d.busy.Set(now, total)
	d.gBusy.Set(total)
	if d.policy == PolicyVGPU {
		d.ensureRotation()
	}
}

// smDemand returns how many SMs the kernel wants: its parallelism
// bound, capped by the context's percentage cap and the domain size.
func (d *domain) smDemand(l *launched) float64 {
	w := float64(d.sms)
	if l.k.MaxSMs > 0 && float64(l.k.MaxSMs) < w {
		w = float64(l.k.MaxSMs)
	}
	if cap := l.ctx.smCap(); cap > 0 && float64(cap) < w {
		w = float64(cap)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// soloDuration is the roofline duration of the whole kernel under the
// given SM count and bandwidth.
func (d *domain) soloDuration(l *launched, sms, bw float64) time.Duration {
	var compute, memt float64
	if l.k.FLOPs > 0 {
		if sms <= 0 {
			sms = 1
		}
		compute = l.k.FLOPs / (sms * d.perSM)
	}
	if l.k.Bytes > 0 {
		if bw <= 0 {
			bw = 1 // degenerate: starved of bandwidth, effectively stalled
		}
		memt = l.k.Bytes / bw
	}
	sec := math.Max(compute, memt)
	return l.k.Overhead + l.extra + time.Duration(sec*float64(time.Second))
}

// selectRunnable picks stream heads according to the policy.
func (d *domain) selectRunnable() []*launched {
	switch d.policy {
	case PolicySpatial:
		var sel []*launched
		for _, c := range d.ctxs {
			if l := c.head(); l != nil && !l.fin {
				sel = append(sel, l)
			}
		}
		return sel
	case PolicyTimeShare:
		// Non-preemptive: continue an in-flight kernel first.
		for _, c := range d.ctxs {
			if l := c.head(); l != nil && l.started && !l.fin {
				return []*launched{l}
			}
		}
		// Round-robin: start scanning after the context that ran
		// last, so no stream monopolizes the device.
		n := len(d.ctxs)
		start := 0
		if d.lastCtx != nil {
			for i, c := range d.ctxs {
				if c == d.lastCtx {
					start = i + 1
					break
				}
			}
		}
		for i := 0; i < n; i++ {
			c := d.ctxs[(start+i)%n]
			if l := c.head(); l != nil && !l.fin {
				return []*launched{l}
			}
		}
		return nil
	case PolicyVGPU:
		if len(d.groups) == 0 {
			return nil
		}
		// Skip to a group with pending work (up to one full cycle).
		for i := 0; i < len(d.groups); i++ {
			g := d.groups[(d.activeGrp+i)%len(d.groups)]
			var sel []*launched
			for _, c := range d.ctxs {
				if c.group != g {
					continue
				}
				if l := c.head(); l != nil && !l.fin {
					sel = append(sel, l)
				}
			}
			if len(sel) > 0 {
				d.activeGrp = (d.activeGrp + i) % len(d.groups)
				return sel
			}
		}
		return nil
	}
	return nil
}

func (d *domain) hasWork() bool {
	for _, c := range d.ctxs {
		if c.head() != nil {
			return true
		}
	}
	return false
}

func (d *domain) ensureRotation() {
	if d.rotT != nil && d.rotT.Active() {
		return
	}
	if !d.hasWork() || len(d.groups) < 2 {
		return
	}
	d.rotT = d.env.Schedule(d.quantum, func() {
		d.rotT = nil
		d.activeGrp = (d.activeGrp + 1) % len(d.groups)
		d.switches++
		d.cSwitch.Inc()
		d.reevaluate()
	})
}

func (d *domain) complete(l *launched) {
	if l.fin {
		return
	}
	now := d.env.Now()
	l.fin = true
	l.running = false
	l.frac = 0
	l.ctx.popHead(l)
	d.lastCtx = l.ctx
	rec := KernelRecord{
		Kernel:  l.k,
		Context: l.ctx.name,
		Domain:  d.name,
		Enqueue: l.enqueue,
		Start:   l.start,
		End:     now,
		SMs:     l.smAlloc,
	}
	d.depth--
	d.gQueue.Set(float64(d.depth))
	d.cDone.Inc()
	if d.obs != nil {
		attrs := []obs.Attr{
			obs.String("domain", d.name),
			obs.String("context", l.ctx.name),
			obs.Float("sms", l.smAlloc),
			obs.Dur("queue_ns", l.start-l.enqueue),
		}
		if l.k.Tag != "" {
			attrs = append(attrs, obs.String("tag", l.k.Tag))
		}
		d.obs.AddSpan("simgpu", l.k.Name, l.ctx.name, l.ctx.traceParent, l.start, now, attrs...)
	}
	if d.onDone != nil {
		d.onDone(rec)
	}
	l.done.Fire(rec)
	d.reevaluate()
}

// abortContext fails every queued or running kernel of c with err and
// removes the context from scheduling. Destroy passes ErrAborted;
// injected hardware faults pass ErrContextLost.
func (d *domain) abortContext(c *Context, err error) {
	now := d.env.Now()
	for _, l := range c.queue {
		if l.fin {
			continue
		}
		l.fin = true
		l.running = false
		if l.finishT != nil {
			l.finishT.Cancel()
			l.finishT = nil
		}
		d.depth--
		d.cAbort.Inc()
		if d.obs != nil {
			start := l.start
			if !l.started {
				start = l.enqueue
			}
			attrs := []obs.Attr{
				obs.String("domain", d.name),
				obs.String("context", c.name),
				obs.String("status", "aborted"),
			}
			if l.k.Tag != "" {
				attrs = append(attrs, obs.String("tag", l.k.Tag))
			}
			d.obs.AddSpan("simgpu", l.k.Name, c.name, c.traceParent, start, now, attrs...)
		}
		if d.onDone != nil {
			d.onDone(KernelRecord{
				Kernel: l.k, Context: c.name, Domain: d.name,
				Enqueue: l.enqueue, Start: l.start, End: now, Aborted: true,
			})
		}
		l.done.Fail(err)
	}
	c.queue = nil
	d.gQueue.Set(float64(d.depth))
	d.removeContext(c)
	d.reevaluate()
}

// busySeries exposes the Σ-allocated-SMs step series.
func (d *domain) busySeries() *metrics.StepSeries { return &d.busy }

// utilization is the time-weighted mean of busy SMs over [from, to]
// divided by the domain's SM count.
func (d *domain) utilization(from, to time.Duration) float64 {
	if d.sms == 0 {
		return 0
	}
	return d.busy.Mean(from, to) / float64(d.sms)
}
