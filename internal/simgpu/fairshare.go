package simgpu

import "sort"

// MaxMinFair allocates capacity among demands using max–min (water
// filling) fairness: every demand receives min(demand, fair share),
// with capacity left by small demands redistributed to larger ones.
// Negative demands are treated as zero. The returned slice is aligned
// with demands. Invariants (property-tested):
//
//	alloc[i] <= demands[i]
//	sum(alloc) <= capacity (within floating-point tolerance)
//	if sum(demands) <= capacity, alloc == demands
//	allocations are monotone in demand: demands[i] <= demands[j]
//	implies alloc[i] <= alloc[j].
func MaxMinFair(capacity float64, demands []float64) []float64 {
	alloc := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return alloc
	}
	idx := make([]int, len(demands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return demand(demands[idx[a]]) < demand(demands[idx[b]]) })
	remaining := capacity
	left := len(demands)
	for _, i := range idx {
		d := demand(demands[i])
		share := remaining / float64(left)
		if d <= share {
			alloc[i] = d
			remaining -= d
		} else {
			alloc[i] = share
			remaining -= share
		}
		left--
	}
	return alloc
}

func demand(d float64) float64 {
	if d < 0 {
		return 0
	}
	return d
}
