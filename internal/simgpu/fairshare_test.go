package simgpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxMinFairUncontended(t *testing.T) {
	alloc := MaxMinFair(100, []float64{10, 20, 30})
	want := []float64{10, 20, 30}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-9 {
			t.Fatalf("alloc = %v", alloc)
		}
	}
}

func TestMaxMinFairContended(t *testing.T) {
	// Demands 10, 50, 90 into capacity 90: 10 gets 10; remaining 80
	// split between two → 40 each.
	alloc := MaxMinFair(90, []float64{10, 50, 90})
	want := []float64{10, 40, 40}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-9 {
			t.Fatalf("alloc = %v want %v", alloc, want)
		}
	}
}

func TestMaxMinFairEqualDemands(t *testing.T) {
	alloc := MaxMinFair(100, []float64{100, 100, 100, 100})
	for _, a := range alloc {
		if math.Abs(a-25) > 1e-9 {
			t.Fatalf("alloc = %v", alloc)
		}
	}
}

func TestMaxMinFairEdgeCases(t *testing.T) {
	if got := MaxMinFair(0, []float64{5}); got[0] != 0 {
		t.Fatalf("zero capacity: %v", got)
	}
	if got := MaxMinFair(10, nil); len(got) != 0 {
		t.Fatalf("nil demands: %v", got)
	}
	if got := MaxMinFair(10, []float64{-5, 20}); got[0] != 0 || math.Abs(got[1]-10) > 1e-9 {
		t.Fatalf("negative demand: %v", got)
	}
}

func TestQuickMaxMinFairInvariants(t *testing.T) {
	f := func(capRaw uint16, demRaw []uint16) bool {
		capacity := float64(capRaw)
		demands := make([]float64, len(demRaw))
		var sum float64
		for i, r := range demRaw {
			demands[i] = float64(r)
			sum += demands[i]
		}
		alloc := MaxMinFair(capacity, demands)
		var total float64
		for i, a := range alloc {
			if a < -1e-9 || a > demands[i]+1e-9 {
				return false // never exceed demand
			}
			total += a
		}
		if total > capacity+1e-6 {
			return false // never exceed capacity
		}
		if sum <= capacity {
			// feasible: everyone gets their demand
			for i := range alloc {
				if math.Abs(alloc[i]-demands[i]) > 1e-6 {
					return false
				}
			}
		} else if capacity > 0 && len(demands) > 0 {
			// work conserving when contended
			if math.Abs(total-capacity) > 1e-6 {
				return false
			}
		}
		// monotone in demand
		for i := range demands {
			for j := range demands {
				if demands[i] <= demands[j] && alloc[i] > alloc[j]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
