package simgpu

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
)

// An injected context loss fails in-flight kernels with ErrContextLost
// (not the orderly ErrAborted), frees the context's memory, and leaves
// the device usable for a fresh context.
func TestInjectContextLoss(t *testing.T) {
	env := devent.NewEnv()
	dev, err := NewDevice(env, "gpu0", A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	var kerr error
	env.Spawn("victim", func(p *devent.Proc) {
		ctx, err := dev.NewContext(p, ContextOpts{Name: "victim", SkipInit: true})
		if err != nil {
			env.Fail(err)
			return
		}
		if _, err := ctx.Alloc("weights", GB); err != nil {
			env.Fail(err)
			return
		}
		ev := ctx.Launch(Kernel{Name: "long", FLOPs: 1e15})
		env.Schedule(time.Millisecond, func() {
			if !dev.InjectContextLoss("victim") {
				t.Error("InjectContextLoss found no context")
			}
		})
		_, kerr = p.Wait(ev)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(kerr, ErrContextLost) {
		t.Fatalf("kernel error = %v, want ErrContextLost", kerr)
	}
	if got := dev.Contexts(); got != 0 {
		t.Fatalf("contexts after loss = %d", got)
	}
	if used := dev.Mem().Used(); used != 0 {
		t.Fatalf("memory still allocated after loss: %d", used)
	}
	if dev.InjectContextLoss("victim") {
		t.Fatal("second injection reported a live context")
	}
}

// ContextNames covers root and MIG-instance contexts deterministically.
func TestContextNamesAcrossDomains(t *testing.T) {
	env := devent.NewEnv()
	dev, err := NewDevice(env, "gpu0", A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("setup", func(p *devent.Proc) {
		if err := dev.EnableMIG(p); err != nil {
			env.Fail(err)
			return
		}
		ins, err := dev.ConfigureMIG(p, []string{"3g.40gb", "1g.10gb"})
		if err != nil {
			env.Fail(err)
			return
		}
		for i, in := range ins {
			if _, err := in.NewContext(p, ContextOpts{SkipInit: true}); err != nil {
				env.Fail(err)
				return
			}
			_ = i
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	names := dev.ContextNames()
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	// Fault one instance context; the other instance is untouched.
	if !dev.InjectContextLoss(names[0]) {
		t.Fatal("inject failed")
	}
	if got := dev.ContextNames(); len(got) != 1 || got[0] != names[1] {
		t.Fatalf("after loss names = %v", got)
	}
}

// Destroy keeps its orderly ErrAborted semantics after the refactor.
func TestDestroyStillAborts(t *testing.T) {
	env := devent.NewEnv()
	dev, err := NewDevice(env, "gpu0", A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	var kerr error
	env.Spawn("p", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		ev := ctx.Launch(Kernel{Name: "k", FLOPs: 1e15})
		env.Schedule(time.Millisecond, ctx.Destroy)
		_, kerr = p.Wait(ev)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(kerr, ErrAborted) {
		t.Fatalf("kernel error = %v, want ErrAborted", kerr)
	}
}
