package simgpu

import (
	"errors"
	"time"

	"repro/internal/devent"
)

// ErrAborted is the failure delivered to kernel completion events when
// their context is destroyed (process kill / partition reconfigure).
var ErrAborted = errors.New("simgpu: kernel aborted (context destroyed)")

// Kernel describes one unit of GPU work under the roofline model.
type Kernel struct {
	// Name labels the kernel for traces.
	Name string
	// FLOPs is the total floating-point work.
	FLOPs float64
	// Bytes is the total memory traffic (reads+writes); the kernel is
	// memory-bound when Bytes/bandwidth exceeds its compute time.
	Bytes float64
	// MaxSMs bounds how many SMs the kernel can productively use
	// (grid size / occupancy). 0 means "unbounded" (whole device).
	// Batch-1 LLM decode kernels have small MaxSMs — the mechanism
	// behind Fig. 2's saturation at ~20 SMs.
	MaxSMs int
	// Overhead is the fixed launch cost paid once per kernel.
	Overhead time.Duration
	// Tag carries workload metadata (e.g. "train", "infer") for
	// per-phase accounting.
	Tag string
}

// Scale returns a copy of the kernel with work and traffic multiplied
// by f (used for batching).
func (k Kernel) Scale(f float64) Kernel {
	k.FLOPs *= f
	k.Bytes *= f
	return k
}

// KernelRecord reports a completed (or aborted) kernel for traces.
type KernelRecord struct {
	Kernel  Kernel
	Context string
	Domain  string
	Enqueue time.Duration
	Start   time.Duration
	End     time.Duration
	SMs     float64 // SMs held at completion time
	Aborted bool
}

// launched is the engine's per-kernel bookkeeping.
type launched struct {
	k       Kernel
	ctx     *Context
	done    *devent.Event
	enqueue time.Duration
	start   time.Duration
	started bool
	running bool
	frac    float64 // remaining fraction of the kernel
	dur     time.Duration
	lastEv  time.Duration
	finishT *devent.Timer
	smAlloc float64
	extra   time.Duration // context-switch overhead folded into this run
	fin     bool
}
