package simgpu

import (
	"errors"
	"fmt"
	"sort"
)

// ErrOOM is returned when an allocation does not fit in device (or MIG
// instance) memory. Under MPS there is no memory isolation, so one
// process's allocations can OOM another — the paper's stated MPS
// drawback.
var ErrOOM = errors.New("simgpu: out of device memory")

// MemPool is a device- or instance-level memory pool. Allocation is
// capacity-accounted only (no fragmentation model).
type MemPool struct {
	name string
	cap  int64
	used int64
	segs map[string]*Segment
	next int
}

// NewMemPool creates a pool with the given capacity in bytes.
func NewMemPool(name string, capacity int64) *MemPool {
	return &MemPool{name: name, cap: capacity, segs: make(map[string]*Segment)}
}

// Name returns the pool name.
func (m *MemPool) Name() string { return m.name }

// Cap returns total capacity in bytes.
func (m *MemPool) Cap() int64 { return m.cap }

// Used returns allocated bytes.
func (m *MemPool) Used() int64 { return m.used }

// Free returns unallocated bytes.
func (m *MemPool) Free() int64 { return m.cap - m.used }

// Segment is a named allocation. Shared segments carry a reference
// count and may be pinned to survive with zero references (the
// GPU-resident weight cache of the paper's future-work section).
type Segment struct {
	pool   *MemPool
	name   string
	size   int64
	shared bool
	pinned bool
	refs   int
	freed  bool
}

// Alloc reserves size bytes. Segment names must be unique within the
// pool; an empty name gets a generated one.
func (m *MemPool) Alloc(name string, size int64) (*Segment, error) {
	return m.alloc(name, size, false)
}

// AllocShared reserves size bytes as a shared segment with an initial
// reference count of one.
func (m *MemPool) AllocShared(name string, size int64) (*Segment, error) {
	return m.alloc(name, size, true)
}

func (m *MemPool) alloc(name string, size int64, shared bool) (*Segment, error) {
	if size < 0 {
		return nil, fmt.Errorf("simgpu: negative allocation %d", size)
	}
	if name == "" {
		m.next++
		name = fmt.Sprintf("seg-%d", m.next)
	}
	if _, dup := m.segs[name]; dup {
		return nil, fmt.Errorf("simgpu: duplicate segment %q in pool %s", name, m.name)
	}
	if m.used+size > m.cap {
		return nil, fmt.Errorf("%w: pool %s: want %d, free %d", ErrOOM, m.name, size, m.Free())
	}
	seg := &Segment{pool: m, name: name, size: size, shared: shared}
	if shared {
		seg.refs = 1
	}
	m.used += size
	m.segs[name] = seg
	return seg, nil
}

// Lookup finds a segment by name (nil if absent).
func (m *MemPool) Lookup(name string) *Segment {
	return m.segs[name]
}

// Segments returns the live segment names in sorted order.
func (m *MemPool) Segments() []string {
	names := make([]string, 0, len(m.segs))
	for n := range m.segs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the segment name.
func (s *Segment) Name() string { return s.name }

// Size returns the segment size in bytes.
func (s *Segment) Size() int64 { return s.size }

// Shared reports whether the segment is reference counted.
func (s *Segment) Shared() bool { return s.shared }

// Refs returns the reference count (0 for non-shared segments).
func (s *Segment) Refs() int { return s.refs }

// Pin keeps a shared segment resident even at zero references.
func (s *Segment) Pin() { s.pinned = true }

// Unpin removes the pin; if references are zero the segment is freed.
func (s *Segment) Unpin() {
	s.pinned = false
	if s.shared && s.refs == 0 {
		s.reclaim()
	}
}

// Pinned reports whether the segment is pinned.
func (s *Segment) Pinned() bool { return s.pinned }

// Retain adds a reference to a shared segment.
func (s *Segment) Retain() {
	if !s.shared {
		panic("simgpu: Retain on non-shared segment")
	}
	if s.freed {
		panic("simgpu: Retain on freed segment")
	}
	s.refs++
}

// Release drops a reference (or frees a non-shared segment outright).
// A shared segment is reclaimed when references reach zero and it is
// not pinned.
func (s *Segment) Release() {
	if s.freed {
		return
	}
	if !s.shared {
		s.reclaim()
		return
	}
	if s.refs > 0 {
		s.refs--
	}
	if s.refs == 0 && !s.pinned {
		s.reclaim()
	}
}

func (s *Segment) reclaim() {
	if s.freed {
		return
	}
	s.freed = true
	s.pool.used -= s.size
	delete(s.pool.segs, s.name)
}

// Freed reports whether the segment's memory has been reclaimed.
func (s *Segment) Freed() bool { return s.freed }
