package simgpu

import (
	"errors"
	"testing"
)

func TestMemPoolAllocFree(t *testing.T) {
	m := NewMemPool("dev", 100)
	a, err := m.Alloc("a", 60)
	if err != nil {
		t.Fatal(err)
	}
	if m.Used() != 60 || m.Free() != 40 {
		t.Fatalf("used=%d free=%d", m.Used(), m.Free())
	}
	if _, err := m.Alloc("b", 50); !errors.Is(err, ErrOOM) {
		t.Fatalf("expected OOM, got %v", err)
	}
	a.Release()
	if !a.Freed() || m.Used() != 0 {
		t.Fatalf("freed=%v used=%d", a.Freed(), m.Used())
	}
	if _, err := m.Alloc("b", 100); err != nil {
		t.Fatal(err)
	}
}

func TestMemPoolDuplicateName(t *testing.T) {
	m := NewMemPool("dev", 100)
	if _, err := m.Alloc("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc("x", 1); err == nil {
		t.Fatal("duplicate name allowed")
	}
}

func TestMemPoolGeneratedNames(t *testing.T) {
	m := NewMemPool("dev", 100)
	a, _ := m.Alloc("", 1)
	b, _ := m.Alloc("", 1)
	if a.Name() == b.Name() {
		t.Fatalf("generated names collide: %s", a.Name())
	}
}

func TestMemPoolNegativeAlloc(t *testing.T) {
	m := NewMemPool("dev", 100)
	if _, err := m.Alloc("n", -1); err == nil {
		t.Fatal("negative alloc allowed")
	}
}

func TestSharedSegmentRefcount(t *testing.T) {
	m := NewMemPool("dev", 100)
	s, err := m.AllocShared("model", 80)
	if err != nil {
		t.Fatal(err)
	}
	if s.Refs() != 1 {
		t.Fatalf("refs = %d", s.Refs())
	}
	s.Retain()
	s.Release()
	if s.Freed() {
		t.Fatal("freed with live ref")
	}
	s.Release()
	if !s.Freed() || m.Used() != 0 {
		t.Fatal("not reclaimed at zero refs")
	}
}

func TestPinnedSegmentSurvivesZeroRefs(t *testing.T) {
	m := NewMemPool("dev", 100)
	s, _ := m.AllocShared("model", 80)
	s.Pin()
	s.Release()
	if s.Freed() {
		t.Fatal("pinned segment reclaimed")
	}
	if m.Lookup("model") != s {
		t.Fatal("pinned segment not findable")
	}
	// Reattach (the weight-cache fast path), then unpin and release.
	s.Retain()
	s.Release()
	s.Unpin()
	if !s.Freed() {
		t.Fatal("segment should be reclaimed after unpin at zero refs")
	}
}

func TestRetainOnNonSharedPanics(t *testing.T) {
	m := NewMemPool("dev", 100)
	s, _ := m.Alloc("x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Retain()
}

func TestDoubleReleaseIsSafe(t *testing.T) {
	m := NewMemPool("dev", 100)
	s, _ := m.Alloc("x", 10)
	s.Release()
	s.Release() // no panic, no double-free accounting
	if m.Used() != 0 {
		t.Fatalf("used = %d", m.Used())
	}
}

func TestSegmentsListing(t *testing.T) {
	m := NewMemPool("dev", 100)
	m.Alloc("b", 1)
	m.Alloc("a", 1)
	got := m.Segments()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("segments = %v", got)
	}
}
