package simgpu

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/devent"
	"repro/internal/metrics"
)

// ErrPlacement is returned when a MIG instance cannot be placed
// (unknown profile, no free slice range, or invalid start position).
var ErrPlacement = errors.New("simgpu: no valid MIG placement")

// MIGProfile describes one MIG instance shape: g compute slices plus a
// whole number of memory slices. Bandwidth scales with memory slices,
// as on real hardware.
type MIGProfile struct {
	// Name is the nvidia-smi profile string, e.g. "3g.40gb".
	Name string
	// Slices is the number of compute slices (the "g" count).
	Slices int
	// MemSlices is the number of memory slices claimed (of
	// DeviceSpec.MemSlices total).
	MemSlices int
	// MemBytes is usable instance memory.
	MemBytes int64
}

// migPlacements lists the allowed start slice per compute-slice count
// on A100-class 7-slice GPUs (mirrors nvidia-smi's placement table).
var migPlacements = map[int][]int{
	1: {0, 1, 2, 3, 4, 5, 6},
	2: {0, 2, 4},
	3: {0, 4},
	4: {0},
	7: {0},
}

// MIGStarts returns the allowed start slices for an instance of the
// given compute-slice count (nil when no placement row exists). The
// fleet packer enumerates these; Device.CreateInstance consumes the
// same table, so out-of-band placement decisions always match what the
// device will accept.
func MIGStarts(slices int) []int {
	return migPlacements[slices]
}

// MIGProfilesFor returns the profile table for a device spec (keyed on
// memory size: the 40 GB and 80 GB A100 tables from the paper's §4.2).
func MIGProfilesFor(spec DeviceSpec) []MIGProfile {
	if spec.MIGSlices == 0 {
		return nil
	}
	if spec.MemBytes >= 80*GB {
		return []MIGProfile{
			{Name: "1g.10gb", Slices: 1, MemSlices: 1, MemBytes: 10 * GB},
			{Name: "2g.20gb", Slices: 2, MemSlices: 2, MemBytes: 20 * GB},
			{Name: "3g.40gb", Slices: 3, MemSlices: 4, MemBytes: 40 * GB},
			{Name: "4g.40gb", Slices: 4, MemSlices: 4, MemBytes: 40 * GB},
			{Name: "7g.80gb", Slices: 7, MemSlices: 8, MemBytes: 80 * GB},
		}
	}
	return []MIGProfile{
		{Name: "1g.5gb", Slices: 1, MemSlices: 1, MemBytes: 5 * GB},
		{Name: "2g.10gb", Slices: 2, MemSlices: 2, MemBytes: 10 * GB},
		{Name: "3g.20gb", Slices: 3, MemSlices: 4, MemBytes: 20 * GB},
		{Name: "4g.20gb", Slices: 4, MemSlices: 4, MemBytes: 20 * GB},
		{Name: "7g.40gb", Slices: 7, MemSlices: 8, MemBytes: 40 * GB},
	}
}

// LookupProfile finds a profile by name for the spec.
func LookupProfile(spec DeviceSpec, name string) (MIGProfile, error) {
	for _, p := range MIGProfilesFor(spec) {
		if p.Name == name {
			return p, nil
		}
	}
	return MIGProfile{}, fmt.Errorf("simgpu: unknown MIG profile %q for %s", name, spec.Name)
}

// Instance is one MIG instance: an isolated compute domain plus an
// isolated memory pool.
type Instance struct {
	dev     *Device
	profile MIGProfile
	start   int
	uuid    string
	dom     *domain
	mem     *MemPool
}

// UUID returns the instance identifier usable in CUDA_VISIBLE_DEVICES.
func (in *Instance) UUID() string { return in.uuid }

// Profile returns the instance's MIG profile.
func (in *Instance) Profile() MIGProfile { return in.profile }

// StartSlice returns the first compute slice the instance occupies.
func (in *Instance) StartSlice() int { return in.start }

// SMs returns the instance's SM count.
func (in *Instance) SMs() int { return in.dom.sms }

// Mem returns the instance's private memory pool.
func (in *Instance) Mem() *MemPool { return in.mem }

// Contexts returns the number of live contexts on the instance.
func (in *Instance) Contexts() int { return len(in.dom.ctxs) }

// BusySeries returns the instance's busy-SM step series.
func (in *Instance) BusySeries() *metrics.StepSeries { return in.dom.busySeries() }

// Utilization returns the instance's mean busy fraction over [from,to].
func (in *Instance) Utilization(from, to time.Duration) float64 {
	return in.dom.utilization(from, to)
}

// NewContext creates a client context on this instance. The context's
// kernels run with compute and memory isolation from other instances.
func (in *Instance) NewContext(p *devent.Proc, opts ContextOpts) (*Context, error) {
	return in.dev.newContextOn(p, in.dom, in.mem, opts)
}

// EnableMIG puts the device in MIG mode. It requires no live contexts
// and costs a device reset.
func (d *Device) EnableMIG(p *devent.Proc) error {
	if d.migEnabled {
		return nil
	}
	if err := d.Reset(p); err != nil {
		return err
	}
	d.migEnabled = true
	return nil
}

// DisableMIG leaves MIG mode. All instances must have been destroyed.
func (d *Device) DisableMIG(p *devent.Proc) error {
	if !d.migEnabled {
		return nil
	}
	if len(d.instances) > 0 {
		return ErrBusy
	}
	if err := d.Reset(p); err != nil {
		return err
	}
	d.migEnabled = false
	return nil
}

// CreateInstance places a new instance of the named profile at the
// first valid free position (nvidia-smi-style auto placement).
func (d *Device) CreateInstance(profileName string) (*Instance, error) {
	if !d.migEnabled {
		return nil, ErrMIGMode
	}
	prof, err := LookupProfile(d.spec, profileName)
	if err != nil {
		return nil, err
	}
	starts, ok := migPlacements[prof.Slices]
	if !ok {
		return nil, fmt.Errorf("%w: profile %s has no placement row", ErrPlacement, prof.Name)
	}
	occupied := make([]bool, d.spec.MIGSlices)
	memUsed := 0
	for _, in := range d.instances {
		for s := in.start; s < in.start+in.profile.Slices; s++ {
			occupied[s] = true
		}
		memUsed += in.profile.MemSlices
	}
	if memUsed+prof.MemSlices > d.spec.MemSlices {
		return nil, fmt.Errorf("%w: out of memory slices (%d used of %d)", ErrPlacement, memUsed, d.spec.MemSlices)
	}
	for _, start := range starts {
		if start+prof.Slices > d.spec.MIGSlices {
			continue
		}
		free := true
		for s := start; s < start+prof.Slices; s++ {
			if occupied[s] {
				free = false
				break
			}
		}
		if free {
			return d.placeInstance(prof, start), nil
		}
	}
	return nil, fmt.Errorf("%w: no free slice range for %s", ErrPlacement, prof.Name)
}

func (d *Device) placeInstance(prof MIGProfile, start int) *Instance {
	d.nInst++
	uuid := fmt.Sprintf("MIG-%s-%d-%s", d.name, d.nInst, prof.Name)
	sms := prof.Slices * d.spec.SMsPerSlice
	bw := d.spec.MemBW * float64(prof.MemSlices) / float64(d.spec.MemSlices)
	in := &Instance{
		dev:     d,
		profile: prof,
		start:   start,
		uuid:    uuid,
		dom:     newDomain(d.env, uuid, sms, d.spec.PerSMFLOPS(), bw, d.spec.ContextSwitch),
		mem:     NewMemPool(uuid, prof.MemBytes),
	}
	// Within an instance, concurrent clients share spatially (MPS is
	// available inside MIG on real hardware; the paper runs one
	// process per instance, for which the policy is irrelevant).
	in.dom.policy = PolicySpatial
	in.dom.onDone = d.kernelDone
	if d.obsC != nil {
		in.dom.setCollector(d.obsC)
	}
	d.instances = append(d.instances, in)
	sort.Slice(d.instances, func(i, j int) bool { return d.instances[i].start < d.instances[j].start })
	return in
}

// DestroyInstance removes an instance; it must have no live contexts.
func (d *Device) DestroyInstance(in *Instance) error {
	if len(in.dom.ctxs) > 0 {
		return ErrBusy
	}
	for i, x := range d.instances {
		if x == in {
			d.instances = append(d.instances[:i], d.instances[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("simgpu: instance %s not on device %s", in.uuid, d.name)
}

// ConfigureMIG atomically replaces the instance layout with the named
// profiles. Per the paper (§6), this requires shutting down every
// application on the GPU first and costs a reset (1–2 s) on top of the
// clients' own restart costs. Profiles are placed in the given order.
func (d *Device) ConfigureMIG(p *devent.Proc, profileNames []string) ([]*Instance, error) {
	if !d.migEnabled {
		return nil, ErrMIGMode
	}
	for _, in := range d.instances {
		if len(in.dom.ctxs) > 0 {
			return nil, ErrBusy
		}
	}
	old := d.instances
	d.instances = nil
	created := make([]*Instance, 0, len(profileNames))
	for _, name := range profileNames {
		in, err := d.CreateInstance(name)
		if err != nil {
			d.instances = old // roll back
			return nil, err
		}
		created = append(created, in)
	}
	if p != nil {
		p.Sleep(d.spec.ResetTime)
	}
	return created, nil
}
