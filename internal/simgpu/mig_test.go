package simgpu

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
)

func migDevice(t *testing.T, env *devent.Env) *Device {
	t.Helper()
	d, err := NewDevice(env, "gpu0", A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEnableMIGCostsReset(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		if err := dev.EnableMIG(p); err != nil {
			t.Error(err)
			return
		}
		if p.Now() != dev.Spec().ResetTime {
			t.Errorf("reset took %v", p.Now())
		}
		if !dev.MIGEnabled() {
			t.Error("MIG not enabled")
		}
		// Plain contexts are now rejected.
		if _, err := dev.NewContext(p, ContextOpts{SkipInit: true}); !errors.Is(err, ErrMIGMode) {
			t.Errorf("NewContext in MIG mode: %v", err)
		}
	})
	run(t, env)
}

func TestEnableMIGRequiresNoContexts(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		if err := dev.EnableMIG(p); !errors.Is(err, ErrBusy) {
			t.Errorf("EnableMIG with live ctx: %v", err)
		}
		ctx.Destroy()
		if err := dev.EnableMIG(p); err != nil {
			t.Error(err)
		}
	})
	run(t, env)
}

func TestMIGPlacementRules(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		if err := dev.EnableMIG(p); err != nil {
			t.Error(err)
			return
		}
		// 3g at slices 0–2, second 3g at 4–6 — the classic pair.
		a, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		b, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		if a.StartSlice() != 0 || b.StartSlice() != 4 {
			t.Errorf("starts = %d, %d", a.StartSlice(), b.StartSlice())
		}
		if a.SMs() != 3*14 {
			t.Errorf("SMs = %d", a.SMs())
		}
		// Memory slices are exhausted (4+4 of 8): even the 1-slice
		// compute hole can't be filled.
		if _, err := dev.CreateInstance("1g.10gb"); !errors.Is(err, ErrPlacement) {
			t.Errorf("1g over memory budget: %v", err)
		}
	})
	run(t, env)
}

func TestMIGPlacementComputeConflict(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		if _, err := dev.CreateInstance("4g.40gb"); err != nil {
			t.Error(err)
			return
		}
		// 4g occupies slices 0–3; a second 4g has no legal start.
		if _, err := dev.CreateInstance("4g.40gb"); !errors.Is(err, ErrPlacement) {
			t.Errorf("second 4g: %v", err)
		}
		// 3g fits at slice 4.
		if _, err := dev.CreateInstance("3g.40gb"); err != nil {
			t.Error(err)
		}
	})
	run(t, env)
}

func TestMIGSevenWay(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		for i := 0; i < 7; i++ {
			if _, err := dev.CreateInstance("1g.10gb"); err != nil {
				// Only 8 memory slices, but 7×1 fits.
				t.Errorf("instance %d: %v", i, err)
				return
			}
		}
		if len(dev.Instances()) != 7 {
			t.Errorf("instances = %d", len(dev.Instances()))
		}
		if _, err := dev.CreateInstance("1g.10gb"); !errors.Is(err, ErrPlacement) {
			t.Errorf("8th 1g: %v", err)
		}
	})
	run(t, env)
}

func TestMIGUnknownProfile(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		if _, err := dev.CreateInstance("9g.90gb"); err == nil {
			t.Error("unknown profile accepted")
		}
	})
	run(t, env)
}

func TestMIGIsolation(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	var soloEnd, sharedEnd time.Duration
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		a, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		b, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		base := p.Now()
		k := Kernel{FLOPs: A100SXM480GB().PerSMFLOPS() * 42} // 1 s on 42 SMs
		done := make([]*devent.Event, 0, 2)
		for _, in := range []*Instance{a, b} {
			in := in
			pr := env.Spawn("tenant", func(q *devent.Proc) {
				ctx, err := in.NewContext(q, ContextOpts{SkipInit: true})
				if err != nil {
					t.Error(err)
					return
				}
				rec, err := ctx.Run(q, k)
				if err != nil {
					t.Error(err)
					return
				}
				sharedEnd = rec.End - base
			})
			done = append(done, pr.Done())
		}
		for _, ev := range done {
			p.Wait(ev)
		}
		// Solo reference on instance a.
		pr := env.Spawn("solo", func(q *devent.Proc) {
			ctx, _ := a.NewContext(q, ContextOpts{SkipInit: true})
			start := q.Now()
			rec, err := ctx.Run(q, k)
			if err != nil {
				t.Error(err)
				return
			}
			soloEnd = rec.End - start
		})
		p.Wait(pr.Done())
	})
	run(t, env)
	// Compute isolation: running on both instances concurrently takes
	// the same time as running alone.
	near(t, sharedEnd, soloEnd)
	near(t, soloEnd, time.Second)
}

func TestMIGMemoryIsolation(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		a, _ := dev.CreateInstance("1g.10gb")
		ctx, err := a.NewContext(p, ContextOpts{SkipInit: true})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := ctx.Alloc("big", 11*GB); !errors.Is(err, ErrOOM) {
			t.Errorf("11 GB into 1g.10gb: %v", err)
		}
		if _, err := ctx.Alloc("ok", 9*GB); err != nil {
			t.Errorf("9 GB into 1g.10gb: %v", err)
		}
	})
	run(t, env)
}

func TestMIGBandwidthScalesWithMemSlices(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		in, _ := dev.CreateInstance("1g.10gb") // 1 of 8 memory slices
		ctx, _ := in.NewContext(p, ContextOpts{SkipInit: true})
		spec := dev.Spec()
		bytes := spec.MemBW / 8 // 1 s at 1/8 bandwidth
		start := p.Now()
		rec, err := ctx.Run(p, Kernel{FLOPs: 1, Bytes: bytes})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End-start, time.Second)
	})
	run(t, env)
}

func TestDestroyInstanceRequiresNoContexts(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		in, _ := dev.CreateInstance("7g.80gb")
		ctx, _ := in.NewContext(p, ContextOpts{SkipInit: true})
		if err := dev.DestroyInstance(in); !errors.Is(err, ErrBusy) {
			t.Errorf("destroy with ctx: %v", err)
		}
		ctx.Destroy()
		if err := dev.DestroyInstance(in); err != nil {
			t.Error(err)
		}
		if len(dev.Instances()) != 0 {
			t.Error("instance still listed")
		}
	})
	run(t, env)
}

func TestConfigureMIGReplacesLayoutWithResetCost(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		if _, err := dev.ConfigureMIG(p, []string{"3g.40gb", "3g.40gb"}); err != nil {
			t.Error(err)
			return
		}
		before := p.Now()
		ins, err := dev.ConfigureMIG(p, []string{"2g.20gb", "2g.20gb", "2g.20gb"})
		if err != nil {
			t.Error(err)
			return
		}
		if p.Now()-before != dev.Spec().ResetTime {
			t.Errorf("reconfigure took %v", p.Now()-before)
		}
		if len(ins) != 3 || len(dev.Instances()) != 3 {
			t.Errorf("layout = %d instances", len(dev.Instances()))
		}
	})
	run(t, env)
}

func TestConfigureMIGBusyAndRollback(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		in, _ := dev.CreateInstance("3g.40gb")
		ctx, _ := in.NewContext(p, ContextOpts{SkipInit: true})
		if _, err := dev.ConfigureMIG(p, []string{"7g.80gb"}); !errors.Is(err, ErrBusy) {
			t.Errorf("configure while busy: %v", err)
		}
		ctx.Destroy()
		// Invalid layout rolls back to the old one.
		if _, err := dev.ConfigureMIG(p, []string{"4g.40gb", "4g.40gb"}); !errors.Is(err, ErrPlacement) {
			t.Errorf("invalid layout: %v", err)
		}
		if len(dev.Instances()) != 1 || dev.Instances()[0] != in {
			t.Error("rollback failed")
		}
	})
	run(t, env)
}

// TestMIGReconfigureUnderLoad exercises the online-repartitioning drain
// protocol at the device layer: while a kernel is actively executing on
// an instance, ConfigureMIG and DestroyInstance must refuse with
// ErrBusy and leave the layout intact, and the in-flight kernel must
// complete unperturbed. Once the tenant drains, the same
// reconfiguration succeeds.
func TestMIGReconfigureUnderLoad(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		in, err := dev.CreateInstance("3g.40gb")
		if err != nil {
			t.Error(err)
			return
		}
		var ctx *Context
		var elapsed time.Duration
		tenant := env.Spawn("tenant", func(q *devent.Proc) {
			ctx, err = in.NewContext(q, ContextOpts{SkipInit: true})
			if err != nil {
				t.Error(err)
				return
			}
			start := q.Now()
			k := Kernel{FLOPs: dev.Spec().PerSMFLOPS() * 42} // 1 s on the 3g instance's 42 SMs
			rec, err := ctx.Run(q, k)
			if err != nil {
				t.Error(err)
				return
			}
			elapsed = rec.End - start
		})
		p.Sleep(500 * time.Millisecond) // mid-kernel
		if _, err := dev.ConfigureMIG(p, []string{"2g.20gb", "2g.20gb"}); !errors.Is(err, ErrBusy) {
			t.Errorf("ConfigureMIG mid-kernel: %v", err)
		}
		if err := dev.DestroyInstance(in); !errors.Is(err, ErrBusy) {
			t.Errorf("DestroyInstance mid-kernel: %v", err)
		}
		if len(dev.Instances()) != 1 || dev.Instances()[0] != in {
			t.Error("layout perturbed by rejected reconfiguration")
		}
		p.Wait(tenant.Done())
		// The rejected admin calls must not have slowed the kernel.
		near(t, elapsed, time.Second)
		ctx.Destroy()
		ins, err := dev.ConfigureMIG(p, []string{"2g.20gb", "2g.20gb"})
		if err != nil {
			t.Error(err)
			return
		}
		if len(ins) != 2 || len(dev.Instances()) != 2 {
			t.Errorf("layout = %d instances", len(dev.Instances()))
		}
	})
	run(t, env)
}

func TestInstanceByUUID(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		in, _ := dev.CreateInstance("2g.20gb")
		if dev.InstanceByUUID(in.UUID()) != in {
			t.Error("lookup by UUID failed")
		}
		if dev.InstanceByUUID("nope") != nil {
			t.Error("phantom instance")
		}
	})
	run(t, env)
}

func TestMIGUtilizationAggregation(t *testing.T) {
	env := devent.NewEnv()
	dev := migDevice(t, env)
	env.Spawn("admin", func(p *devent.Proc) {
		dev.EnableMIG(p)
		in, _ := dev.CreateInstance("7g.80gb") // 98 SMs
		ctx, _ := in.NewContext(p, ContextOpts{SkipInit: true})
		base := p.Now()
		// Busy all 98 SMs for 1 s.
		k := Kernel{FLOPs: dev.Spec().PerSMFLOPS() * 98}
		if _, err := ctx.Run(p, k); err != nil {
			t.Error(err)
			return
		}
		u := dev.Utilization(base, base+time.Second)
		// 98 busy of 108 physical SMs ≈ 0.907.
		if u < 0.89 || u > 0.92 {
			t.Errorf("utilization = %v", u)
		}
	})
	run(t, env)
}

func TestProfileTables(t *testing.T) {
	for _, spec := range []DeviceSpec{A100SXM440GB(), A100SXM480GB()} {
		profs := MIGProfilesFor(spec)
		if len(profs) != 5 {
			t.Fatalf("%s: %d profiles", spec.Name, len(profs))
		}
		for _, pr := range profs {
			if pr.Slices < 1 || pr.Slices > spec.MIGSlices {
				t.Fatalf("%s: bad slices %d", pr.Name, pr.Slices)
			}
			if pr.MemBytes <= 0 || pr.MemBytes > spec.MemBytes {
				t.Fatalf("%s: bad mem %d", pr.Name, pr.MemBytes)
			}
		}
	}
	if profs := MIGProfilesFor(MI210()); profs != nil {
		t.Fatal("MI210 should have no MIG profiles")
	}
}
