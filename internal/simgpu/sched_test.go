package simgpu

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/devent"
)

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyTimeShare: "timeshare",
		PolicySpatial:   "spatial",
		PolicyVGPU:      "vgpu",
		Policy(42):      "unknown",
	} {
		if p.String() != want {
			t.Fatalf("%d -> %s", p, p.String())
		}
	}
}

func TestKernelScale(t *testing.T) {
	k := Kernel{FLOPs: 10, Bytes: 20, MaxSMs: 5, Overhead: time.Second}
	s := k.Scale(3)
	if s.FLOPs != 30 || s.Bytes != 60 {
		t.Fatalf("scaled = %+v", s)
	}
	if s.MaxSMs != 5 || s.Overhead != time.Second {
		t.Fatal("Scale should not touch parallelism or overhead")
	}
	if k.FLOPs != 10 {
		t.Fatal("Scale mutated the receiver")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []DeviceSpec{
		{SMs: 0, MemBytes: 1, FP32FLOPS: 1, MemBW: 1},
		{SMs: 1, MemBytes: 0, FP32FLOPS: 1, MemBW: 1},
		{SMs: 1, MemBytes: 1, FP32FLOPS: 0, MemBW: 1},
		{SMs: 1, MemBytes: 1, FP32FLOPS: 1, MemBW: 0},
		{SMs: 1, MemBytes: 1, FP32FLOPS: 1, MemBW: 1, MIGSlices: -1},
		{SMs: 10, MemBytes: 1, FP32FLOPS: 1, MemBW: 1, MIGSlices: 7, SMsPerSlice: 14},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
	for _, spec := range []DeviceSpec{A100SXM440GB(), A100SXM480GB(), MI210()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s rejected: %v", spec.Name, err)
		}
	}
	env := devent.NewEnv()
	if _, err := NewDevice(env, "bad", DeviceSpec{}); err == nil {
		t.Error("NewDevice accepted a zero spec")
	}
}

func TestMPSOversubscription(t *testing.T) {
	// Three clients at 50% each on a 100-SM device: total demand 150
	// SMs; max-min fairness gives each ~33.
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicySpatial)
	var last time.Duration
	for i := 0; i < 3; i++ {
		env.Spawn("c", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true, SMPercent: 50})
			rec, err := ctx.Run(p, Kernel{FLOPs: 100})
			if err != nil {
				t.Error(err)
				return
			}
			if rec.End > last {
				last = rec.End
			}
		})
	}
	run(t, env)
	near(t, last, 3*time.Second) // 100 FLOPs / 33.3 SMs
}

func TestTimeShareRoundRobinFairness(t *testing.T) {
	// Three contexts each with a stream of 1-second kernels: the
	// round-robin must interleave them, not drain one stream first.
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	firstEnd := make([]time.Duration, 3)
	for i := 0; i < 3; i++ {
		i := i
		env.Spawn("c", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
			ev1 := ctx.Launch(Kernel{FLOPs: 100})
			ev2 := ctx.Launch(Kernel{FLOPs: 100})
			v, err := p.Wait(ev1)
			if err != nil {
				t.Error(err)
				return
			}
			firstEnd[i] = v.(KernelRecord).End
			p.Wait(ev2)
		})
	}
	run(t, env)
	// Every context's FIRST kernel completes within the first three
	// seconds (fair interleave); if one stream were drained first,
	// another context's first kernel would wait ≥4 s.
	for i, e := range firstEnd {
		if e > 3*time.Second+time.Microsecond {
			t.Fatalf("context %d first kernel at %v (starved)", i, e)
		}
	}
}

func TestVGPUPauseResumeConservesWork(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicyVGPU)
	dev.SetVGPUQuantum(50 * time.Millisecond)
	ends := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.Spawn("vm", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true, Group: fmt.Sprintf("vm%d", i)})
			rec, err := ctx.Run(p, Kernel{FLOPs: 100})
			if err != nil {
				t.Error(err)
				return
			}
			ends[i] = rec.End
		})
	}
	run(t, env)
	// Total 2 s of work, strictly alternating: both finish by ~2 s and
	// the sum of completion times ≈ 1.5·makespan + 0.5·makespan.
	for i, e := range ends {
		if e > 2100*time.Millisecond {
			t.Fatalf("vm%d end = %v", i, e)
		}
	}
}

func TestVGPUSingleGroupRunsUninterrupted(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicyVGPU)
	env.Spawn("vm", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true, Group: "only"})
		rec, err := ctx.Run(p, Kernel{FLOPs: 100})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End, time.Second) // no rotation penalty
	})
	run(t, env)
}

func TestRunAllPropagatesAbort(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	var ctx *Context
	var got error
	env.Spawn("victim", func(p *devent.Proc) {
		ctx, _ = dev.NewContext(p, ContextOpts{SkipInit: true})
		got = ctx.RunAll(p, []Kernel{{FLOPs: 100}, {FLOPs: 100}, {FLOPs: 100}})
	})
	env.Spawn("killer", func(p *devent.Proc) {
		p.Sleep(1500 * time.Millisecond)
		ctx.Destroy()
	})
	run(t, env)
	if got == nil {
		t.Fatal("RunAll survived context destroy")
	}
}

func TestRunAllEmpty(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		if err := ctx.RunAll(p, nil); err != nil {
			t.Error(err)
		}
	})
	run(t, env)
}

func TestBusySeriesDropsToZeroAfterCompletion(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		ctx.Run(p, Kernel{FLOPs: 100, MaxSMs: 30})
	})
	run(t, env)
	s := dev.BusySeries()
	if got := s.At(500 * time.Millisecond); got != 30 {
		t.Fatalf("busy mid-kernel = %v", got)
	}
	if got := s.At(5 * time.Second); got != 0 {
		t.Fatalf("busy after completion = %v", got)
	}
}

func TestContextOptsValidation(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		if _, err := dev.NewContext(p, ContextOpts{SkipInit: true, SMPercent: -1}); err == nil {
			t.Error("negative percent accepted")
		}
		if _, err := dev.NewContext(p, ContextOpts{SkipInit: true, SMPercent: 101}); err == nil {
			t.Error("percent >100 accepted")
		}
	})
	run(t, env)
}

func TestKernelRecordFields(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true, Name: "svc"})
		p.Sleep(time.Second)
		rec, err := ctx.Run(p, Kernel{Name: "k", FLOPs: 100, Tag: "x"})
		if err != nil {
			t.Error(err)
			return
		}
		if rec.Context != "svc" || rec.Domain != "gpu0" || rec.Kernel.Tag != "x" {
			t.Errorf("rec = %+v", rec)
		}
		near(t, rec.Enqueue, time.Second)
		near(t, rec.Start, time.Second)
		near(t, rec.End, 2*time.Second)
	})
	run(t, env)
}

// Property: work conservation under spatial sharing — the integral of
// busy SMs equals the total SM-seconds of the submitted kernels,
// whatever the arrival pattern (all kernels compute-bound, demands
// within device capacity so no truncation effects).
func TestQuickSpatialWorkConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		env := devent.NewEnv()
		dev, err := NewDevice(env, "gpu0", testSpec())
		if err != nil {
			return false
		}
		dev.SetPolicy(PolicySpatial)
		var wantSMSeconds float64
		for i, r := range raw {
			flops := float64(r%50+1) * 4 // FLOPs = SM-seconds at 1 FLOP/s/SM
			maxSMs := int(r%16) + 1
			start := time.Duration(i%5) * 100 * time.Millisecond
			wantSMSeconds += flops
			env.Spawn("c", func(p *devent.Proc) {
				p.Sleep(start)
				ctx, err := dev.NewContext(p, ContextOpts{SkipInit: true})
				if err != nil {
					env.Fail(err)
					return
				}
				if _, err := ctx.Run(p, Kernel{FLOPs: flops, MaxSMs: maxSMs}); err != nil {
					env.Fail(err)
					return
				}
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		got := dev.BusySeries().Integral(0, env.Now()+time.Second)
		return math.Abs(got-wantSMSeconds) < 1e-3*wantSMSeconds+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: busy SMs never exceed the domain size.
func TestQuickBusyNeverExceedsCapacity(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		env := devent.NewEnv()
		dev, _ := NewDevice(env, "gpu0", testSpec())
		dev.SetPolicy(PolicySpatial)
		for _, r := range raw {
			flops := float64(r%100 + 1)
			env.Spawn("c", func(p *devent.Proc) {
				ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
				ctx.Run(p, Kernel{FLOPs: flops})
			})
		}
		if err := env.Run(); err != nil {
			return false
		}
		s := dev.BusySeries()
		for i := 0; i < s.Len(); i++ {
			if _, v := s.Step(i); v > 100+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A kernel launched while its predecessor on the same stream runs
// must wait (stream ordering) even under spatial policy.
func TestSpatialStreamOrdering(t *testing.T) {
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicySpatial)
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true})
		ev1 := ctx.Launch(Kernel{FLOPs: 100, MaxSMs: 10})
		ev2 := ctx.Launch(Kernel{FLOPs: 100, MaxSMs: 10})
		v2, err := p.Wait(ev2)
		if err != nil {
			t.Error(err)
			return
		}
		v1, _ := p.Wait(ev1)
		if v2.(KernelRecord).Start < v1.(KernelRecord).End {
			t.Error("second kernel overlapped the first on one stream")
		}
	})
	run(t, env)
}

func TestMemoryBoundKernelIgnoresSMCap(t *testing.T) {
	// A pure-copy kernel's duration depends on bandwidth, not SMs.
	env := devent.NewEnv()
	dev := mustDevice(t, env, testSpec())
	dev.SetPolicy(PolicySpatial)
	env.Spawn("c", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, ContextOpts{SkipInit: true, SMPercent: 10})
		rec, err := ctx.Run(p, Kernel{Bytes: 100})
		if err != nil {
			t.Error(err)
			return
		}
		near(t, rec.End, time.Second) // 100 B at 100 B/s, SM cap irrelevant
	})
	run(t, env)
}
