// Package simgpu is a discrete-event GPU simulator.
//
// It models a data-center accelerator at the granularity the paper's
// evaluation depends on: streaming multiprocessors (SMs), HBM
// bandwidth, device memory capacity, kernel launch overhead, context
// initialization, and the sharing semantics of NVIDIA's multiplexing
// mechanisms (Table 1 of the paper):
//
//   - default time-sharing: kernels from different contexts serialize,
//     each getting the whole device;
//   - CUDA MPS (default): kernels from different processes run
//     concurrently, sharing SMs and memory bandwidth;
//   - CUDA MPS with GPU percentage: per-process SM caps
//     (CUDA_MPS_ACTIVE_THREAD_PERCENTAGE semantics), no memory
//     isolation;
//   - Multi-Instance GPU (MIG): hardware slices with compute and
//     memory isolation, reconfigurable only via device reset;
//   - vGPU: homogeneous group-level time slicing.
//
// Kernels follow a roofline model: duration on s SMs with allocated
// bandwidth b is overhead + max(FLOPs/(s·perSM), Bytes/b), with a
// per-kernel parallelism bound MaxSMs. Concurrent kernels share SMs
// and bandwidth under max–min fairness, re-evaluated whenever the
// running set changes (processor sharing).
package simgpu

import "time"

// DeviceSpec describes the hardware being simulated.
type DeviceSpec struct {
	// Name identifies the part, e.g. "A100-SXM4-80GB".
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// MemBytes is device memory capacity in bytes.
	MemBytes int64
	// FP32FLOPS is peak single-precision throughput in FLOP/s for the
	// whole device; per-SM throughput is FP32FLOPS/SMs.
	FP32FLOPS float64
	// MemBW is HBM bandwidth in bytes/s for the whole device.
	MemBW float64
	// PCIeBW is host-to-device copy bandwidth in bytes/s.
	PCIeBW float64
	// HostLoadBW is the effective end-to-end model-loading bandwidth
	// (storage → host → device) in bytes/s; slower than raw PCIe.
	HostLoadBW float64
	// ContextInit is the time to create a GPU context (driver+runtime
	// initialization), part of the serverless cold start.
	ContextInit time.Duration
	// ContextSwitch is the penalty charged when the time-sharing
	// scheduler switches between kernels of different contexts.
	ContextSwitch time.Duration
	// ResetTime is the cost of a device reset, required to enable MIG
	// mode or change the MIG partition layout.
	ResetTime time.Duration
	// MIGSlices is the number of compute slices in MIG mode (7 on
	// A100/H100); 0 disables MIG support.
	MIGSlices int
	// SMsPerSlice is the number of SMs per MIG compute slice (14 on
	// A100: 98 of 108 SMs usable under MIG).
	SMsPerSlice int
	// MemSlices is the number of memory slices (8 on A100); MIG
	// profiles claim whole memory slices, which also sets their share
	// of MemBW.
	MemSlices int
}

// PerSMFLOPS returns single-precision throughput per SM.
func (s DeviceSpec) PerSMFLOPS() float64 {
	if s.SMs == 0 {
		return 0
	}
	return s.FP32FLOPS / float64(s.SMs)
}

// Validate reports whether the spec is internally consistent.
func (s DeviceSpec) Validate() error {
	switch {
	case s.SMs <= 0:
		return errSpec("SMs must be positive")
	case s.MemBytes <= 0:
		return errSpec("MemBytes must be positive")
	case s.FP32FLOPS <= 0:
		return errSpec("FP32FLOPS must be positive")
	case s.MemBW <= 0:
		return errSpec("MemBW must be positive")
	case s.MIGSlices < 0 || s.SMsPerSlice < 0 || s.MemSlices < 0:
		return errSpec("MIG geometry must be non-negative")
	case s.MIGSlices > 0 && s.MIGSlices*s.SMsPerSlice > s.SMs:
		return errSpec("MIG slices exceed SM count")
	}
	return nil
}

type specError string

func errSpec(s string) error      { return specError(s) }
func (e specError) Error() string { return "simgpu: invalid spec: " + string(e) }

const (
	// GiB is 2^30 bytes.
	GiB = int64(1) << 30
	// GB is 10^9 bytes (marketing gigabytes, as in "40 GB A100").
	GB = int64(1e9)
)

// A100SXM440GB returns the spec of the paper's primary testbed GPU.
func A100SXM440GB() DeviceSpec {
	return DeviceSpec{
		Name:          "A100-SXM4-40GB",
		SMs:           108,
		MemBytes:      40 * GB,
		FP32FLOPS:     19.5e12,
		MemBW:         1.555e12,
		PCIeBW:        25e9,
		HostLoadBW:    5e9,
		ContextInit:   800 * time.Millisecond,
		ContextSwitch: 50 * time.Microsecond,
		ResetTime:     1500 * time.Millisecond,
		MIGSlices:     7,
		SMsPerSlice:   14,
		MemSlices:     8,
	}
}

// A100SXM480GB returns the 80 GB A100 used for the multi-instance
// LLaMa-2 experiments (Figs. 4 and 5).
func A100SXM480GB() DeviceSpec {
	s := A100SXM440GB()
	s.Name = "A100-SXM4-80GB"
	s.MemBytes = 80 * GB
	s.MemBW = 2.039e12
	return s
}

// MI210 returns an AMD MI210-like spec (Table 1 mentions AMD
// equivalents; CU masking plays the role of MPS percentages).
func MI210() DeviceSpec {
	return DeviceSpec{
		Name:          "MI210",
		SMs:           104, // compute units
		MemBytes:      64 * GB,
		FP32FLOPS:     22.6e12,
		MemBW:         1.6e12,
		PCIeBW:        32e9,
		HostLoadBW:    5e9,
		ContextInit:   700 * time.Millisecond,
		ContextSwitch: 50 * time.Microsecond,
		ResetTime:     1500 * time.Millisecond,
		// No MIG equivalent (Table 1: "AMD equivalent: none").
	}
}
