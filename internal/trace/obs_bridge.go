package trace

import "repro/internal/obs"

// SpanFromObs converts a collector span to a trace span: the track is
// kept, and the label/kind prefer the "app" attribute (htex run spans
// carry it) falling back to the span name.
func SpanFromObs(s obs.Span) Span {
	label := s.Attr("app")
	if label == "" {
		label = s.Name
	}
	return Span{
		Track: s.Track,
		Label: label,
		Kind:  label,
		Start: s.Start,
		End:   s.End,
	}
}

// FromObs builds a Log from collector spans (Gantt rendering of a
// causal trace).
func FromObs(spans []obs.Span) *Log {
	var log Log
	for _, s := range spans {
		log.Add(SpanFromObs(s))
	}
	return &log
}
