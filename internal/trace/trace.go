// Package trace collects execution spans (task phases, kernel runs)
// and renders them as Gantt charts, CSV, and idle-time statistics —
// the instrumentation behind the paper's Fig. 3, which shows the
// molecular-design campaign's simulation/training/inference phases and
// the GPU idle gaps between inference bursts.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Span is one timed activity on a named track.
type Span struct {
	// Track is the row the span renders on (worker, device, phase).
	Track string
	// Label describes the activity (app name, kernel name).
	Label string
	// Kind groups spans for filtering and glyph selection
	// ("simulation", "training", "inference").
	Kind string
	// Start and End are virtual times.
	Start time.Duration
	End   time.Duration
}

// Duration returns End-Start.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Log is an append-only span collection.
type Log struct {
	spans []Span
}

// Add appends a span; zero-length and negative spans are kept (they
// mark instants) but never break interval math.
func (l *Log) Add(s Span) {
	if s.End < s.Start {
		s.End = s.Start
	}
	l.spans = append(l.spans, s)
}

// Len returns the span count.
func (l *Log) Len() int { return len(l.spans) }

// Spans returns a copy of all spans.
func (l *Log) Spans() []Span { return append([]Span(nil), l.spans...) }

// OfKind returns the spans with the given kind.
func (l *Log) OfKind(kind string) []Span {
	var out []Span
	for _, s := range l.spans {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Kinds returns the distinct kinds in first-seen order.
func (l *Log) Kinds() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range l.spans {
		if !seen[s.Kind] {
			seen[s.Kind] = true
			out = append(out, s.Kind)
		}
	}
	return out
}

// Makespan returns the latest span end.
func (l *Log) Makespan() time.Duration {
	var m time.Duration
	for _, s := range l.spans {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// Interval is a half-open [Start, End) time range.
type Interval struct {
	Start, End time.Duration
}

// Duration returns End-Start.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Union merges possibly overlapping spans into disjoint intervals in
// increasing time order.
func Union(spans []Span) []Interval {
	if len(spans) == 0 {
		return nil
	}
	ivs := make([]Interval, 0, len(spans))
	for _, s := range spans {
		if s.End > s.Start {
			ivs = append(ivs, Interval{s.Start, s.End})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	var out []Interval
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Gaps returns the idle intervals between the merged coverage of the
// spans, within [from, to].
func Gaps(spans []Span, from, to time.Duration) []Interval {
	cov := Union(spans)
	var out []Interval
	cursor := from
	for _, iv := range cov {
		if iv.End <= from {
			continue
		}
		if iv.Start >= to {
			break
		}
		if iv.Start > cursor {
			out = append(out, Interval{cursor, iv.Start})
		}
		if iv.End > cursor {
			cursor = iv.End
		}
	}
	if cursor < to {
		out = append(out, Interval{cursor, to})
	}
	return out
}

// BusyFraction returns covered time / window for the given spans.
func BusyFraction(spans []Span, from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	var busy time.Duration
	for _, iv := range Union(spans) {
		a, b := iv.Start, iv.End
		if a < from {
			a = from
		}
		if b > to {
			b = to
		}
		if b > a {
			busy += b - a
		}
	}
	return float64(busy) / float64(to-from)
}

// GanttOpts controls rendering.
type GanttOpts struct {
	// Width is the number of time columns (default 100).
	Width int
	// GroupBy chooses rows: "track" (default) or "kind".
	GroupBy string
	// Glyphs maps kind → rune; unknown kinds use '#'.
	Glyphs map[string]rune
}

// Gantt renders the log as an ASCII chart, one row per track (or
// kind), '.' for idle. Rows are sorted by name for determinism.
func (l *Log) Gantt(opts GanttOpts) string {
	width := opts.Width
	if width <= 0 {
		width = 100
	}
	makespan := l.Makespan()
	if makespan == 0 || len(l.spans) == 0 {
		return "(empty trace)\n"
	}
	rowKey := func(s Span) string {
		if opts.GroupBy == "kind" {
			return s.Kind
		}
		return s.Track
	}
	rows := map[string][]rune{}
	var order []string
	for _, s := range l.spans {
		key := rowKey(s)
		if _, ok := rows[key]; !ok {
			row := make([]rune, width)
			for i := range row {
				row[i] = '.'
			}
			rows[key] = row
			order = append(order, key)
		}
		glyph := '#'
		if g, ok := opts.Glyphs[s.Kind]; ok {
			glyph = g
		} else if s.Kind != "" {
			glyph = rune(strings.ToUpper(s.Kind)[0])
		}
		lo := int(float64(s.Start) / float64(makespan) * float64(width))
		hi := int(float64(s.End) / float64(makespan) * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			rows[key][i] = glyph
		}
	}
	sort.Strings(order)
	labelW := 0
	for _, k := range order {
		if len(k) > labelW {
			labelW = len(k)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s  |%s| 0 .. %s\n", labelW, "", strings.Repeat("-", width), makespan.Round(time.Millisecond))
	for _, k := range order {
		fmt.Fprintf(&b, "%*s  |%s|\n", labelW, k, string(rows[k]))
	}
	return b.String()
}

// WriteCSV emits the spans as CSV (track,label,kind,start_s,end_s).
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "track,label,kind,start_s,end_s"); err != nil {
		return err
	}
	for _, s := range l.spans {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%.6f,%.6f\n",
			csvEscape(s.Track), csvEscape(s.Label), csvEscape(s.Kind),
			s.Start.Seconds(), s.End.Seconds()); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// KindSummary is per-kind aggregate statistics.
type KindSummary struct {
	Kind      string
	Count     int
	TotalBusy time.Duration // union coverage
	SumSpans  time.Duration // sum of span durations (can exceed busy)
}

// Summarize computes per-kind aggregates in first-seen kind order.
func (l *Log) Summarize() []KindSummary {
	var out []KindSummary
	for _, kind := range l.Kinds() {
		spans := l.OfKind(kind)
		var sum time.Duration
		for _, s := range spans {
			sum += s.Duration()
		}
		var busy time.Duration
		for _, iv := range Union(spans) {
			busy += iv.Duration()
		}
		out = append(out, KindSummary{Kind: kind, Count: len(spans), TotalBusy: busy, SumSpans: sum})
	}
	return out
}

// Sparkline renders a step series (e.g. busy SMs over time) as one
// Gantt-width row of block glyphs, scaled to max. It pairs with
// Gantt output to show device utilization under the task rows.
func Sparkline(s *metrics.StepSeries, to time.Duration, width int, max float64) string {
	if width <= 0 {
		width = 100
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	row := make([]rune, width)
	for i := 0; i < width; i++ {
		a := time.Duration(float64(to) * float64(i) / float64(width))
		b := time.Duration(float64(to) * float64(i+1) / float64(width))
		v := s.Mean(a, b)
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(glyphs)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		row[i] = glyphs[idx]
	}
	return string(row)
}
