package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func sp(track, kind string, start, end time.Duration) Span {
	return Span{Track: track, Label: kind, Kind: kind, Start: start, End: end}
}

func TestUnionMergesOverlaps(t *testing.T) {
	ivs := Union([]Span{
		sp("a", "x", 0, 2*time.Second),
		sp("a", "x", 1*time.Second, 3*time.Second),
		sp("a", "x", 5*time.Second, 6*time.Second),
	})
	if len(ivs) != 2 {
		t.Fatalf("ivs = %v", ivs)
	}
	if ivs[0] != (Interval{0, 3 * time.Second}) || ivs[1] != (Interval{5 * time.Second, 6 * time.Second}) {
		t.Fatalf("ivs = %v", ivs)
	}
}

func TestUnionIgnoresZeroSpans(t *testing.T) {
	ivs := Union([]Span{sp("a", "x", time.Second, time.Second)})
	if len(ivs) != 0 {
		t.Fatalf("ivs = %v", ivs)
	}
}

func TestGaps(t *testing.T) {
	spans := []Span{
		sp("a", "x", 1*time.Second, 2*time.Second),
		sp("a", "x", 4*time.Second, 5*time.Second),
	}
	gaps := Gaps(spans, 0, 6*time.Second)
	want := []Interval{{0, time.Second}, {2 * time.Second, 4 * time.Second}, {5 * time.Second, 6 * time.Second}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v", gaps)
		}
	}
}

func TestGapsFullyCovered(t *testing.T) {
	spans := []Span{sp("a", "x", 0, 10*time.Second)}
	if gaps := Gaps(spans, 0, 10*time.Second); len(gaps) != 0 {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestBusyFraction(t *testing.T) {
	spans := []Span{
		sp("a", "x", 0, 2*time.Second),
		sp("b", "x", 1*time.Second, 3*time.Second), // overlap counts once
	}
	got := BusyFraction(spans, 0, 6*time.Second)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("busy = %v", got)
	}
	if BusyFraction(nil, 0, 0) != 0 {
		t.Fatal("degenerate window")
	}
}

func TestLogBasics(t *testing.T) {
	var l Log
	l.Add(sp("w0", "training", 0, 2*time.Second))
	l.Add(sp("w1", "inference", time.Second, 4*time.Second))
	l.Add(Span{Track: "w1", Kind: "inference", Start: 5 * time.Second, End: 4 * time.Second}) // clamped
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Makespan() != 5*time.Second {
		t.Fatalf("makespan = %v", l.Makespan())
	}
	if got := l.OfKind("inference"); len(got) != 2 {
		t.Fatalf("inference spans = %d", len(got))
	}
	kinds := l.Kinds()
	if len(kinds) != 2 || kinds[0] != "training" {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestGanttRendering(t *testing.T) {
	var l Log
	l.Add(sp("gpu0", "training", 0, 5*time.Second))
	l.Add(sp("gpu0", "inference", 5*time.Second, 10*time.Second))
	l.Add(sp("cpu0", "simulation", 0, 10*time.Second))
	out := l.Gantt(GanttOpts{Width: 10})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 tracks
		t.Fatalf("out:\n%s", out)
	}
	if !strings.Contains(lines[1], "cpu0") || !strings.Contains(lines[1], "SSSSSSSSSS") {
		t.Fatalf("cpu row: %q", lines[1])
	}
	if !strings.Contains(lines[2], "TTTTTIIIII") {
		t.Fatalf("gpu row: %q", lines[2])
	}
}

func TestGanttGroupByKindAndGlyphs(t *testing.T) {
	var l Log
	l.Add(sp("w0", "training", 0, time.Second))
	l.Add(sp("w1", "training", time.Second, 2*time.Second))
	out := l.Gantt(GanttOpts{Width: 4, GroupBy: "kind", Glyphs: map[string]rune{"training": '*'}})
	if !strings.Contains(out, "training") || !strings.Contains(out, "****") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	var l Log
	if got := l.Gantt(GanttOpts{}); got != "(empty trace)\n" {
		t.Fatalf("got %q", got)
	}
}

func TestGanttTinySpanVisible(t *testing.T) {
	var l Log
	l.Add(sp("a", "x", 0, 100*time.Second))
	l.Add(sp("b", "y", 50*time.Second, 50*time.Second+time.Millisecond))
	out := l.Gantt(GanttOpts{Width: 20})
	if !strings.Contains(out, "Y") {
		t.Fatalf("tiny span invisible:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var l Log
	l.Add(Span{Track: "w,0", Label: `say "hi"`, Kind: "k", Start: 0, End: time.Second})
	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "track,label,kind,start_s,end_s\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, `"w,0","say ""hi""",k,0.000000,1.000000`) {
		t.Fatalf("row: %q", out)
	}
}

func TestSummarize(t *testing.T) {
	var l Log
	l.Add(sp("a", "training", 0, 2*time.Second))
	l.Add(sp("b", "training", 1*time.Second, 3*time.Second))
	l.Add(sp("a", "inference", 4*time.Second, 5*time.Second))
	sums := l.Summarize()
	if len(sums) != 2 {
		t.Fatalf("sums = %v", sums)
	}
	tr := sums[0]
	if tr.Kind != "training" || tr.Count != 2 || tr.TotalBusy != 3*time.Second || tr.SumSpans != 4*time.Second {
		t.Fatalf("training summary = %+v", tr)
	}
}

// Property: Union produces sorted, disjoint intervals covering exactly
// the busy time, and Gaps+coverage tile the window.
func TestQuickUnionGapsTile(t *testing.T) {
	f := func(raw []uint8) bool {
		spans := make([]Span, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			a := time.Duration(raw[i]) * time.Second
			b := a + time.Duration(raw[i+1]%10)*time.Second
			spans = append(spans, sp("t", "k", a, b))
		}
		window := 300 * time.Second
		cov := Union(spans)
		for i := 1; i < len(cov); i++ {
			if cov[i].Start <= cov[i-1].End {
				return false // not disjoint or not sorted
			}
		}
		var covered, gapped time.Duration
		for _, iv := range cov {
			covered += iv.Duration()
		}
		for _, g := range Gaps(spans, 0, window) {
			gapped += g.Duration()
		}
		return covered+gapped == window
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	var s metrics.StepSeries
	s.Set(0, 0)
	s.Set(5*time.Second, 100)
	row := Sparkline(&s, 10*time.Second, 10, 100)
	r := []rune(row)
	if len(r) != 10 {
		t.Fatalf("width = %d", len(r))
	}
	if r[0] != ' ' || r[9] != '█' {
		t.Fatalf("row = %q", row)
	}
	// Degenerate inputs stay in bounds.
	if got := Sparkline(&s, 10*time.Second, 0, 0); len([]rune(got)) != 100 {
		t.Fatalf("default width broken")
	}
}
