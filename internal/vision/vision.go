// Package vision serves image-classification models (the paper's
// §3.3 workload) on simgpu devices: the CNN's lowered kernel stream
// runs per request, preceded by host-side preprocessing. Batch-1 CNN
// inference uses only a fraction of an A100 (Fig. 1's rapidly varying
// per-layer parallelism), which makes it the canonical co-tenant for
// GPU multiplexing.
package vision

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/devent"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/simgpu"
)

// ErrNotLoaded is returned when inference is attempted before Load.
var ErrNotLoaded = errors.New("vision: model not loaded")

// Config describes one CNN serving instance.
type Config struct {
	// Model is the network (e.g. models.ResNet50()).
	Model *models.Model
	// Batch is images per request (default 1).
	Batch int
	// BytesPerElt is weight/activation precision (default 4, fp32).
	BytesPerElt int
	// Preprocess is host-side work per request (decode, resize);
	// default 5 ms.
	Preprocess time.Duration
	// Lower overrides kernel lowering (Batch/BytesPerElt/Tag are
	// filled in from this config).
	Lower models.LowerOpts
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.BytesPerElt <= 0 {
		c.BytesPerElt = 4
	}
	if c.Preprocess == 0 {
		c.Preprocess = 5 * time.Millisecond
	}
	return c
}

// WeightBytes returns the model's parameter footprint.
func (c Config) WeightBytes() int64 {
	return c.Model.WeightBytes(c.withDefaults().BytesPerElt)
}

// Engine is one loaded CNN service.
type Engine struct {
	cfg     Config
	ctx     *simgpu.Context
	kernels []simgpu.Kernel
	weights *simgpu.Segment
	loaded  bool
}

// New creates an unloaded engine.
func New(cfg Config) *Engine {
	c := cfg.withDefaults()
	lower := c.Lower
	lower.Batch = c.Batch
	lower.BytesPerElt = c.BytesPerElt
	if lower.Tag == "" {
		lower.Tag = "infer"
	}
	lower.FuseElementwise = true
	return &Engine{cfg: c, kernels: models.Lower(c.Model, lower)}
}

// Loaded reports whether weights are resident.
func (e *Engine) Loaded() bool { return e.loaded }

// Kernels returns the per-request kernel stream (for inspection).
func (e *Engine) Kernels() []simgpu.Kernel {
	return append([]simgpu.Kernel(nil), e.kernels...)
}

// Load allocates weights on the context and transfers them.
func (e *Engine) Load(p *devent.Proc, ctx *simgpu.Context, hostLoadBW float64) error {
	seg, err := ctx.Alloc(e.cfg.Model.Name+"-weights", e.cfg.WeightBytes())
	if err != nil {
		return err
	}
	ctx.Transfer(p, e.cfg.WeightBytes(), hostLoadBW)
	e.ctx = ctx
	e.weights = seg
	e.loaded = true
	return nil
}

// Infer serves one request: preprocessing on the host, then the kernel
// stream on the GPU. It returns the request latency.
func (e *Engine) Infer(p *devent.Proc) (time.Duration, error) {
	if !e.loaded {
		return 0, ErrNotLoaded
	}
	start := p.Now()
	p.Sleep(e.cfg.Preprocess)
	if err := e.ctx.RunAll(p, e.kernels); err != nil {
		return 0, err
	}
	return p.Now() - start, nil
}

// Serve runs n requests back to back, collecting latencies.
func (e *Engine) Serve(p *devent.Proc, n int) (*metrics.Durations, error) {
	var lat metrics.Durations
	for i := 0; i < n; i++ {
		l, err := e.Infer(p)
		if err != nil {
			return nil, fmt.Errorf("vision: request %d: %w", i, err)
		}
		lat.Add(l)
	}
	return &lat, nil
}

// Unload releases the weights.
func (e *Engine) Unload() {
	if e.weights != nil {
		e.weights.Release()
		e.weights = nil
	}
	e.loaded = false
}
