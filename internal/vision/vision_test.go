package vision

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/models"
	"repro/internal/simgpu"
)

func setup(t *testing.T) (*devent.Env, *simgpu.Device) {
	t.Helper()
	env := devent.NewEnv()
	dev, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	return env, dev
}

func TestInferBatchOneIsFast(t *testing.T) {
	env, dev := setup(t)
	var lat time.Duration
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(Config{Model: models.ResNet50()})
		if err := e.Load(p, ctx, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		l, err := e.Infer(p)
		if err != nil {
			t.Error(err)
			return
		}
		lat = l
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	// ~5 ms preprocess + a few ms of GPU: well under 15 ms total, the
	// real-time envelope the paper's §6 mentions (<100 ms budgets).
	if lat < 5*time.Millisecond || lat > 15*time.Millisecond {
		t.Fatalf("latency = %v", lat)
	}
}

func TestBatchIncreasesLatencyButHelpsThroughput(t *testing.T) {
	env, dev := setup(t)
	var lat1, lat32 time.Duration
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e1 := New(Config{Model: models.ResNet50(), Batch: 1})
		if err := e1.Load(p, ctx, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		l, _ := e1.Infer(p)
		lat1 = l
		e1.Unload()
		e32 := New(Config{Model: models.ResNet50(), Batch: 32})
		if err := e32.Load(p, ctx, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		l, _ = e32.Infer(p)
		lat32 = l
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if lat32 <= lat1 {
		t.Fatalf("batch-32 request %v not slower than batch-1 %v", lat32, lat1)
	}
	// But far sublinear: per-image time shrinks.
	if lat32 >= 32*lat1/4 {
		t.Fatalf("batching not amortizing: b1=%v b32=%v", lat1, lat32)
	}
}

func TestSmallPartitionBarelyHurtsBatchOne(t *testing.T) {
	measure := func(pct int) time.Duration {
		env, dev := setup(t)
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			t.Fatal(err)
		}
		var mean time.Duration
		env.Spawn("svc", func(p *devent.Proc) {
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: pct})
			e := New(Config{Model: models.ResNet50()})
			if err := e.Load(p, ctx, dev.Spec().HostLoadBW); err != nil {
				t.Error(err)
				return
			}
			lat, err := e.Serve(p, 10)
			if err != nil {
				t.Error(err)
				return
			}
			mean = lat.Mean()
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return mean
	}
	full := measure(0)
	quarter := measure(25)
	// A quarter of an A100 costs batch-1 ResNet well under 25%.
	if float64(quarter) > 1.25*float64(full) {
		t.Fatalf("25%% partition latency %v vs full %v", quarter, full)
	}
}

func TestInferBeforeLoad(t *testing.T) {
	env, _ := setup(t)
	env.Spawn("svc", func(p *devent.Proc) {
		e := New(Config{Model: models.ResNet50()})
		if _, err := e.Infer(p); !errors.Is(err, ErrNotLoaded) {
			t.Errorf("err = %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnloadFreesWeights(t *testing.T) {
	env, dev := setup(t)
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		e := New(Config{Model: models.ResNet50()})
		e.Load(p, ctx, dev.Spec().HostLoadBW)
		if dev.Mem().Used() == 0 {
			t.Error("weights not allocated")
		}
		e.Unload()
		if dev.Mem().Used() != 0 {
			t.Errorf("leak: %d", dev.Mem().Used())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightBytes(t *testing.T) {
	c := Config{Model: models.ResNet50()}
	// 25.557M params × 4 bytes ≈ 102 MB.
	if w := c.WeightBytes(); w != 25_557_032*4 {
		t.Fatalf("weights = %d", w)
	}
}
