// Package weightcache implements the paper's first future-work item
// (§7): sharing model weights resident in GPU memory across function
// instances, so that re-partitioning (which requires killing and
// restarting the process under MPS) no longer re-pays the model load.
//
// A Cache owns pinned, reference-counted shared segments in device
// (or MIG instance) memory pools. A new function instance attaches to
// the cached weights and is ready after context initialization alone;
// the paper measures the avoided reload at 10–20 s for LLaMa models.
package weightcache

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/devent"
	"repro/internal/llm"
	"repro/internal/simgpu"
)

// ErrMismatch is returned when shard counts disagree with a cached
// entry.
var ErrMismatch = errors.New("weightcache: shard count mismatch")

// ErrSizeMismatch is returned when a hit's config wants a different
// weight footprint than the cached segments hold — a key collision
// (two models sharing one cache key) that would otherwise silently
// attach wrong-sized weights.
var ErrSizeMismatch = errors.New("weightcache: cached weight size mismatch")

// entry is one cached model: a pinned shared segment per shard pool.
type entry struct {
	segs  []*simgpu.Segment
	pools []*simgpu.MemPool
}

// Cache is a GPU-resident model weight cache.
type Cache struct {
	entries map[string]*entry
	hits    int
	misses  int
}

// New creates an empty cache.
func New() *Cache { return &Cache{entries: make(map[string]*entry)} }

// Hits and Misses report attach statistics.
func (c *Cache) Hits() int { return c.hits }

// Misses reports how many attaches required a cold load.
func (c *Cache) Misses() int { return c.misses }

// Keys returns the cached model keys in sorted order.
func (c *Cache) Keys() []string {
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Bytes returns total cached weight bytes.
func (c *Cache) Bytes() int64 {
	var n int64
	for _, e := range c.entries {
		for _, s := range e.segs {
			n += s.Size()
		}
	}
	return n
}

// Contains reports whether key is cached.
func (c *Cache) Contains(key string) bool { return c.entries[key] != nil }

// AttachOrLoad produces a ready llm.Engine on the given shard
// contexts. On a cache hit the engine attaches to the resident
// weights (no transfer, paying only workspace allocation); on a miss
// the weights are loaded once into pinned shared segments — owned by
// the cache, surviving any number of process restarts — and then
// attached.
func (c *Cache) AttachOrLoad(p *devent.Proc, key string, cfg llm.Config, shards []*simgpu.Context, hostLoadBW float64) (*llm.Engine, bool, error) {
	if e, ok := c.entries[key]; ok {
		if len(e.segs) != len(shards) {
			return nil, false, fmt.Errorf("%w: cached %d shards, want %d", ErrMismatch, len(e.segs), len(shards))
		}
		var cached int64
		for _, s := range e.segs {
			cached += s.Size()
		}
		if cached != cfg.WeightBytes() {
			return nil, false, fmt.Errorf("%w: key %q holds %d bytes, config wants %d",
				ErrSizeMismatch, key, cached, cfg.WeightBytes())
		}
		eng := llm.New(cfg)
		if err := eng.AttachCached(p, shards, e.segs); err != nil {
			return nil, false, err
		}
		c.hits++
		return eng, true, nil
	}
	// Miss: load weights into shared pinned segments.
	n := int64(len(shards))
	if n == 0 {
		return nil, false, errors.New("weightcache: no shards")
	}
	// Even split with the last shard taking the division remainder, so
	// the cached segments sum exactly to cfg.WeightBytes().
	per := cfg.WeightBytes() / n
	e := &entry{}
	for i, ctx := range shards {
		size := per
		if int64(i) == n-1 {
			size = cfg.WeightBytes() - per*(n-1)
		}
		pool := ctx.Pool()
		seg, err := pool.AllocShared(fmt.Sprintf("wcache/%s/%d", key, i), size)
		if err != nil {
			c.release(e)
			return nil, false, err
		}
		seg.Pin()
		seg.Release() // cache holds via the pin, not a reference
		e.segs = append(e.segs, seg)
		e.pools = append(e.pools, pool)
		ctx.Transfer(p, size, hostLoadBW)
	}
	eng := llm.New(cfg)
	if err := eng.AttachCached(p, shards, e.segs); err != nil {
		c.release(e)
		return nil, false, err
	}
	c.entries[key] = e
	c.misses++
	return eng, false, nil
}

// Evict removes a cached model, freeing its memory once no instance
// still references it.
func (c *Cache) Evict(key string) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	delete(c.entries, key)
	c.release(e)
	return true
}

func (c *Cache) release(e *entry) {
	for _, s := range e.segs {
		s.Unpin()
	}
}
