package weightcache

import (
	"errors"
	"testing"
	"time"

	"repro/internal/devent"
	"repro/internal/llm"
	"repro/internal/simgpu"
)

func newDev(t *testing.T, env *devent.Env) *simgpu.Device {
	t.Helper()
	d, err := simgpu.NewDevice(env, "gpu0", simgpu.A100SXM480GB())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMissThenHit(t *testing.T) {
	env := devent.NewEnv()
	dev := newDev(t, env)
	cache := New()
	cfg := llm.LLaMa27B()
	env.Spawn("svc", func(p *devent.Proc) {
		ctx1, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		t0 := p.Now()
		eng1, hit, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx1}, dev.Spec().HostLoadBW)
		if err != nil || hit {
			t.Errorf("first attach: hit=%v err=%v", hit, err)
			return
		}
		coldTime := p.Now() - t0
		if coldTime < 2*time.Second { // ≈13.5 GB at 5 GB/s ≈ 2.7 s
			t.Errorf("cold load too fast: %v", coldTime)
		}
		if _, err := eng1.Complete(p, 4, 4); err != nil {
			t.Error(err)
		}
		// Simulate the MPS re-partition: kill the process (destroy
		// context), then restart and attach.
		ctx1.Destroy()
		if !cache.Contains("7b") {
			t.Error("cache lost entry after process death")
			return
		}
		ctx2, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		t1 := p.Now()
		eng2, hit, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx2}, dev.Spec().HostLoadBW)
		if err != nil || !hit {
			t.Errorf("second attach: hit=%v err=%v", hit, err)
			return
		}
		if warm := p.Now() - t1; warm != 0 {
			t.Errorf("warm attach took %v", warm)
		}
		if _, err := eng2.Complete(p, 4, 4); err != nil {
			t.Error(err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != 1 || cache.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
}

func TestCachedBytesAndKeys(t *testing.T) {
	env := devent.NewEnv()
	dev := newDev(t, env)
	cache := New()
	cfg := llm.LLaMa27B()
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		if _, _, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		if cache.Bytes() != cfg.WeightBytes() {
			t.Errorf("bytes = %d", cache.Bytes())
		}
		if keys := cache.Keys(); len(keys) != 1 || keys[0] != "7b" {
			t.Errorf("keys = %v", keys)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictFreesAfterLastUser(t *testing.T) {
	env := devent.NewEnv()
	dev := newDev(t, env)
	cache := New()
	cfg := llm.LLaMa27B()
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		eng, _, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW)
		if err != nil {
			t.Error(err)
			return
		}
		_ = eng
		used := dev.Mem().Used()
		if !cache.Evict("7b") {
			t.Error("evict failed")
		}
		// The attached engine still references the weights, so memory
		// is not freed yet.
		if dev.Mem().Used() != used {
			t.Error("weights freed under a live engine")
		}
		ctx.Destroy() // releases the attachment
		if dev.Mem().Used() != 0 {
			t.Errorf("leak after last user: %d", dev.Mem().Used())
		}
		if cache.Evict("7b") {
			t.Error("double evict succeeded")
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestShardMismatch(t *testing.T) {
	env := devent.NewEnv()
	dev := newDev(t, env)
	dev2 := func() *simgpu.Device {
		d, _ := simgpu.NewDevice(env, "gpu1", simgpu.A100SXM480GB())
		return d
	}()
	cache := New()
	cfg := llm.LLaMa27B()
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		if _, _, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		c1, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		c2, _ := dev2.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		_, _, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{c1, c2}, dev.Spec().HostLoadBW)
		if !errors.Is(err, ErrMismatch) {
			t.Errorf("err = %v", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// The shard-sizing regression: a weight footprint that does not divide
// evenly must still cache every byte (the last shard takes the
// remainder), not silently drop WeightBytes() mod n bytes.
func TestShardSizesSumToWeightBytes(t *testing.T) {
	env := devent.NewEnv()
	dev := newDev(t, env)
	cache := New()
	cfg := llm.LLaMa27B()
	cfg.WeightBytesOverride = 10*simgpu.GB + 1 // indivisible by 3
	env.Spawn("svc", func(p *devent.Proc) {
		var shards []*simgpu.Context
		for i := 0; i < 3; i++ {
			ctx, err := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
			if err != nil {
				t.Error(err)
				return
			}
			shards = append(shards, ctx)
		}
		if _, _, err := cache.AttachOrLoad(p, "7b", cfg, shards, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		if cache.Bytes() != cfg.WeightBytes() {
			t.Errorf("cached %d bytes, want %d", cache.Bytes(), cfg.WeightBytes())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// The hit-path regression: attaching under a cached key with a config
// whose weight footprint disagrees with the cached segments is a key
// collision and must be rejected, not served wrong-sized weights.
func TestHitRejectsWeightSizeCollision(t *testing.T) {
	env := devent.NewEnv()
	dev := newDev(t, env)
	cache := New()
	cfg := llm.LLaMa27B()
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		if _, _, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW); err != nil {
			t.Error(err)
			return
		}
		other := cfg
		other.WeightBytesOverride = cfg.WeightBytes() / 2
		ctx2, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		_, _, err := cache.AttachOrLoad(p, "7b", other, []*simgpu.Context{ctx2}, dev.Spec().HostLoadBW)
		if !errors.Is(err, ErrSizeMismatch) {
			t.Errorf("err = %v", err)
		}
		// The matching config still attaches fine.
		if _, hit, err := cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx2}, dev.Spec().HostLoadBW); err != nil || !hit {
			t.Errorf("hit=%v err=%v", hit, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOOMRollsBack(t *testing.T) {
	env := devent.NewEnv()
	dev := newDev(t, env)
	cache := New()
	cfg := llm.LLaMa27B()
	cfg.WeightBytesOverride = 100 * simgpu.GB // cannot fit
	env.Spawn("svc", func(p *devent.Proc) {
		ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true})
		_, _, err := cache.AttachOrLoad(p, "big", cfg, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW)
		if !errors.Is(err, simgpu.ErrOOM) {
			t.Errorf("err = %v", err)
		}
		if cache.Contains("big") || dev.Mem().Used() != 0 {
			t.Errorf("OOM left state: contains=%v used=%d", cache.Contains("big"), dev.Mem().Used())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// The headline ablation: re-partitioning with the cache skips the
// model reload entirely.
func TestRepartitionFasterWithCache(t *testing.T) {
	measure := func(useCache bool) time.Duration {
		env := devent.NewEnv()
		dev := newDev(t, env)
		if err := dev.SetPolicy(simgpu.PolicySpatial); err != nil {
			t.Fatal(err)
		}
		cache := New()
		cfg := llm.LLaMa27B()
		cfg.BytesPerParam = 4 // fp32, the paper's 10–20 s regime
		var repartition time.Duration
		env.Spawn("svc", func(p *devent.Proc) {
			// Initial instance at 50%.
			ctx, _ := dev.NewContext(p, simgpu.ContextOpts{SkipInit: true, SMPercent: 50})
			var eng *llm.Engine
			var err error
			if useCache {
				eng, _, err = cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW)
			} else {
				eng = llm.New(cfg)
				err = eng.Load(p, []*simgpu.Context{ctx}, dev.Spec().HostLoadBW)
			}
			if err != nil {
				t.Error(err)
				return
			}
			eng.Complete(p, 4, 4)
			// Re-partition to 25%: process restart required.
			start := p.Now()
			eng.Unload()
			ctx.Destroy()
			ctx2, _ := dev.NewContext(p, simgpu.ContextOpts{SMPercent: 25}) // pays context init
			if useCache {
				eng, _, err = cache.AttachOrLoad(p, "7b", cfg, []*simgpu.Context{ctx2}, dev.Spec().HostLoadBW)
			} else {
				eng = llm.New(cfg)
				err = eng.Load(p, []*simgpu.Context{ctx2}, dev.Spec().HostLoadBW)
			}
			if err != nil {
				t.Error(err)
				return
			}
			repartition = p.Now() - start
		})
		if err := env.Run(); err != nil {
			t.Fatal(err)
		}
		return repartition
	}
	without := measure(false)
	with := measure(true)
	// fp32 7B reload ≈ 5.4 s; cached attach skips it.
	if without < 5*time.Second {
		t.Fatalf("uncached repartition = %v", without)
	}
	if with >= without/3 {
		t.Fatalf("cache barely helped: with=%v without=%v", with, without)
	}
}
